// Package permute provides uniform random permutations (Fisher–Yates,
// Durstenfeld's Algorithm 235) and the weakly uniform random Orthogonal
// Latin Square construction of Sec. 3.3.3 used to coordinate the stripe
// interval generation across all N input ports.
package permute

import "math/rand"

// Uniform returns a uniformly random permutation of {0, ..., n-1} drawn from
// rng using the Fisher–Yates shuffle.
func Uniform(n int, rng *rand.Rand) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// IsPermutation reports whether p is a permutation of {0, ..., len(p)-1}.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the inverse permutation of p.
func Inverse(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// OLS is an N x N Orthogonal Latin Square over the alphabet {0, ..., N-1}:
// every row and every column is a permutation. Entry At(i, j) is the primary
// intermediate port assigned to the VOQ at input port i destined to output
// port j.
//
// The construction is the weakly uniform random one from the paper:
// a(i, j) = (sigmaR(i) + sigmaC(j)) mod N with sigmaR, sigmaC independent
// uniform random permutations. Each row and each column is then marginally a
// uniform random permutation, which is exactly what the worst-case large
// deviation analysis requires, and the square is generated in O(N log N)
// random bits rather than the open problem of sampling a strongly uniform
// OLS.
type OLS struct {
	rowPerm []int // sigmaR
	colPerm []int // sigmaC
	n       int
}

// NewOLS builds a weakly uniform random OLS of order n using randomness from
// rng.
func NewOLS(n int, rng *rand.Rand) *OLS {
	return &OLS{
		rowPerm: Uniform(n, rng),
		colPerm: Uniform(n, rng),
		n:       n,
	}
}

// FixedOLS builds the deterministic OLS a(i,j) = (i+j) mod n. It is useful in
// tests where a known square is wanted; it is a valid OLS but not random.
func FixedOLS(n int) *OLS {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	return &OLS{rowPerm: id, colPerm: append([]int(nil), id...), n: n}
}

// N returns the order of the square.
func (o *OLS) N() int { return o.n }

// At returns the entry in row i, column j: the 0-based primary intermediate
// port for the VOQ from input i to output j.
func (o *OLS) At(i, j int) int {
	return (o.rowPerm[i] + o.colPerm[j]) % o.n
}

// Row returns row i of the square as a fresh slice (the permutation mapping
// output j to the primary intermediate port of VOQ (i, j)).
func (o *OLS) Row(i int) []int {
	r := make([]int, o.n)
	for j := range r {
		r[j] = o.At(i, j)
	}
	return r
}

// Col returns column j of the square as a fresh slice.
func (o *OLS) Col(j int) []int {
	c := make([]int, o.n)
	for i := range c {
		c[i] = o.At(i, j)
	}
	return c
}

// Valid reports whether every row and every column of the square is a
// permutation of {0, ..., N-1} (the defining OLS property from Sec. 3.3.3).
func (o *OLS) Valid() bool {
	for i := 0; i < o.n; i++ {
		if !IsPermutation(o.Row(i)) || !IsPermutation(o.Col(i)) {
			return false
		}
	}
	return true
}
