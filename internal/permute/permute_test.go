package permute

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		_ = seed
		return IsPermutation(Uniform(n, rng))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestUniformMarginals checks that each element lands in each position with
// roughly equal frequency — the marginal uniformity the stability analysis
// requires of the OLS rows and columns.
func TestUniformMarginals(t *testing.T) {
	const (
		n      = 8
		trials = 40000
	)
	rng := rand.New(rand.NewSource(2))
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for trial := 0; trial < trials; trial++ {
		p := Uniform(n, rng)
		for pos, v := range p {
			counts[pos][v]++
		}
	}
	want := float64(trials) / n
	for pos := range counts {
		for v, c := range counts[pos] {
			if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
				t.Errorf("position %d value %d: count %d, want ~%.0f", pos, v, c, want)
			}
		}
	}
}

func TestIsPermutationRejects(t *testing.T) {
	bad := [][]int{
		{0, 0},
		{1, 2},
		{0, 2, 2},
		{-1, 0},
	}
	for _, p := range bad {
		if IsPermutation(p) {
			t.Errorf("IsPermutation(%v) = true", p)
		}
	}
	if !IsPermutation(nil) {
		t.Error("empty slice should be a (trivial) permutation")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		p := Uniform(16, rng)
		inv := Inverse(p)
		for i, v := range p {
			if inv[v] != i {
				t.Fatalf("Inverse broken at %d", i)
			}
		}
	}
}

// TestOLSValid is the core structural property of Sec. 3.3.3: every row and
// column of the weakly uniform random OLS is a permutation.
func TestOLSValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%32 + 1
		o := NewOLS(n, rand.New(rand.NewSource(seed)))
		return o.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFixedOLS(t *testing.T) {
	o := FixedOLS(8)
	if !o.Valid() {
		t.Fatal("FixedOLS invalid")
	}
	if o.At(2, 3) != 5 {
		t.Errorf("FixedOLS At(2,3) = %d, want 5", o.At(2, 3))
	}
}

// TestOLSRowMarginalUniform verifies the "weakly uniform" property: each
// row, over random seeds, is marginally a uniform random permutation.
func TestOLSRowMarginalUniform(t *testing.T) {
	const (
		n      = 4
		trials = 30000
	)
	rng := rand.New(rand.NewSource(4))
	// counts[j][v]: how often row 1 maps column j to value v.
	counts := make([][]int, n)
	for j := range counts {
		counts[j] = make([]int, n)
	}
	for trial := 0; trial < trials; trial++ {
		o := NewOLS(n, rng)
		for j := 0; j < n; j++ {
			counts[j][o.At(1, j)]++
		}
	}
	want := float64(trials) / n
	for j := range counts {
		for v, c := range counts[j] {
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Errorf("row 1, column %d, value %d: count %d, want ~%.0f", j, v, c, want)
			}
		}
	}
}

func TestOLSRowColAccessors(t *testing.T) {
	o := NewOLS(16, rand.New(rand.NewSource(5)))
	r := o.Row(3)
	c := o.Col(7)
	for j := range r {
		if r[j] != o.At(3, j) {
			t.Fatalf("Row mismatch at %d", j)
		}
	}
	for i := range c {
		if c[i] != o.At(i, 7) {
			t.Fatalf("Col mismatch at %d", i)
		}
	}
	if o.N() != 16 {
		t.Fatalf("N = %d", o.N())
	}
}
