package midstage

import (
	"testing"

	"sprinklers/internal/sim"
)

func TestFIFOPerOutputService(t *testing.T) {
	const n = 4
	s := New(n)
	// Two packets for output 1 at intermediate 0; they depart in FIFO
	// order on consecutive visits of the second fabric.
	s.Enqueue(0, sim.Packet{Out: 1, Seq: 0})
	s.Enqueue(0, sim.Packet{Out: 1, Seq: 1})
	if s.Backlog() != 2 {
		t.Fatalf("Backlog = %d", s.Backlog())
	}
	var got []sim.Delivery
	for tt := sim.Slot(0); tt < 3*n; tt++ {
		s.Step(tt, func(d sim.Delivery) { got = append(got, d) })
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].Packet.Seq != 0 || got[1].Packet.Seq != 1 {
		t.Fatal("FIFO order violated")
	}
	// Intermediate 0 serves output 1 when (0 - t) mod 4 == 1, i.e. t = 3
	// mod 4: exactly one service per round.
	if got[1].Depart-got[0].Depart != sim.Slot(n) {
		t.Fatalf("services %d slots apart, want %d", got[1].Depart-got[0].Depart, n)
	}
}

func TestFakesDropped(t *testing.T) {
	const n = 4
	s := New(n)
	s.Enqueue(2, sim.Packet{Out: 0, Fake: true})
	s.Enqueue(2, sim.Packet{Out: 0})
	if s.Backlog() != 1 {
		t.Fatalf("Backlog = %d (fakes must not count)", s.Backlog())
	}
	delivered := 0
	for tt := sim.Slot(0); tt < 3*n; tt++ {
		s.Step(tt, func(d sim.Delivery) {
			if d.Packet.Fake {
				t.Fatal("fake delivered")
			}
			delivered++
		})
	}
	if delivered != 1 || s.Backlog() != 0 {
		t.Fatalf("delivered=%d backlog=%d", delivered, s.Backlog())
	}
}

func TestQueueLen(t *testing.T) {
	s := New(4)
	s.Enqueue(1, sim.Packet{Out: 2})
	s.Enqueue(1, sim.Packet{Out: 2, Fake: true})
	if s.QueueLen(1, 2) != 2 {
		t.Fatalf("QueueLen = %d, want 2 including fakes", s.QueueLen(1, 2))
	}
}

func TestStepReturnsRemovedCount(t *testing.T) {
	const n = 2
	s := New(n)
	s.Enqueue(0, sim.Packet{Out: 0})
	s.Enqueue(1, sim.Packet{Out: 1})
	// At t=0: intermediate 0 -> output 0, intermediate 1 -> output 1.
	if got := s.Step(0, nil); got != 2 {
		t.Fatalf("removed %d, want 2", got)
	}
}
