// Package midstage implements the center stage shared by the frame-based
// load-balanced switches (UFS, FOFF, PF): every intermediate port keeps one
// FIFO per output, and during slot t intermediate port l forwards the head
// of the FIFO for output SecondStage(l, t). Padding cells (Packet.Fake) are
// consumed silently at the output, as in the Padded Frames scheme.
package midstage

import (
	"sprinklers/internal/queue"
	"sprinklers/internal/sim"
)

// Stage is the bank of N x N per-(intermediate, output) FIFOs.
type Stage struct {
	n    int
	q    [][]queue.FIFO[sim.Packet]
	real int // non-fake packets buffered
}

// New builds the center stage for an n-port switch.
func New(n int) *Stage {
	s := &Stage{n: n, q: make([][]queue.FIFO[sim.Packet], n)}
	for l := range s.q {
		s.q[l] = make([]queue.FIFO[sim.Packet], n)
	}
	return s
}

// Enqueue buffers p at intermediate port l.
func (s *Stage) Enqueue(l int, p sim.Packet) {
	s.q[l][p.Out].Push(p)
	if !p.Fake {
		s.real++
	}
}

// Step executes one slot of the second fabric: each intermediate port
// forwards to its currently connected output. Real packets are handed to
// deliver; fake ones vanish. It returns the number of real packets removed.
func (s *Stage) Step(t sim.Slot, deliver sim.DeliverFunc) int {
	removed := 0
	for l := 0; l < s.n; l++ {
		j := sim.SecondStage(l, t, s.n)
		q := &s.q[l][j]
		if q.Empty() {
			continue
		}
		p := q.Pop()
		if p.Fake {
			continue
		}
		s.real--
		removed++
		if deliver != nil {
			deliver(sim.Delivery{Packet: p, Depart: t})
		}
	}
	return removed
}

// Backlog returns the number of real packets buffered in the stage.
func (s *Stage) Backlog() int { return s.real }

// QueueLen returns the FIFO length (including fakes) at intermediate port l
// for output j; exported for the equal-length invariant tests.
func (s *Stage) QueueLen(l, j int) int { return s.q[l][j].Len() }
