// White-box scheduler tests: pick fairness and load awareness, report
// staleness, probe suppression, and churn under -race. The end-to-end
// behavior (stealing, speculation, byte identity) lives in the black-box
// chaos suite in cluster_test.go.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pickCounts runs n picks and tallies them by worker URL.
func pickCounts(c *Coordinator, n int) map[string]int {
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		if w := c.pick(nil); w != nil {
			counts[w.url]++
		}
	}
	return counts
}

// TestPickRoundRobinFairnessEqualLoad: with no load reports (all loads
// equal) the power-of-two chooser must degrade to exact round-robin —
// every healthy worker chosen exactly once per cycle.
func TestPickRoundRobinFairnessEqualLoad(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	c := New(Options{Workers: urls})
	const cycles = 10
	counts := pickCounts(c, cycles*len(urls))
	for _, u := range urls {
		if counts[u] != cycles {
			t.Errorf("worker %s picked %d times in %d calls, want exactly %d (round-robin ties)",
				u, counts[u], cycles*len(urls), cycles)
		}
	}
}

// TestPickAvoidsDeepestWorker: a worker reporting a deep queue must never
// win a two-choice comparison against an unloaded peer.
func TestPickAvoidsDeepestWorker(t *testing.T) {
	c := New(Options{Workers: []string{"http://a", "http://b", "http://c"}})
	c.HeartbeatLoad("http://c", &LoadReport{QueueDepth: 7, Inflight: 3})
	counts := pickCounts(c, 30)
	if counts["http://c"] != 0 {
		t.Errorf("deepest worker picked %d times, want 0 while peers are idle", counts["http://c"])
	}
	if counts["http://a"] == 0 || counts["http://b"] == 0 {
		t.Errorf("idle workers starved: %v", counts)
	}
}

// TestPickFallsBackToRoundRobinWhenStale: once a load report ages past
// 3x the heartbeat interval it must stop biasing placement, so a worker
// whose reports died (but whose health is fine) still gets work.
func TestPickFallsBackToRoundRobinWhenStale(t *testing.T) {
	c := New(Options{
		Workers:           []string{"http://a", "http://b"},
		HeartbeatInterval: 10 * time.Millisecond,
	})
	c.HeartbeatLoad("http://b", &LoadReport{QueueDepth: 50})
	if counts := pickCounts(c, 10); counts["http://b"] != 0 {
		t.Fatalf("fresh deep report ignored: b picked %d times", counts["http://b"])
	}
	time.Sleep(4 * c.opts.HeartbeatInterval) // past staleAfter
	if counts := pickCounts(c, 10); counts["http://b"] != 5 {
		t.Errorf("stale report still biasing placement: b picked %d of 10, want 5 (round-robin)",
			counts["http://b"])
	}
}

// TestPickPrefersOutstanding: even with no reports at all, the
// coordinator's own in-flight dispatches are a load signal — a worker
// holding outstanding jobs loses the two-choice comparison.
func TestPickPrefersOutstanding(t *testing.T) {
	c := New(Options{Workers: []string{"http://a", "http://b"}})
	wa := c.register("http://a")
	wa.addOutstanding(3)
	if counts := pickCounts(c, 10); counts["http://a"] != 0 {
		t.Errorf("worker with outstanding dispatches picked %d times, want 0", counts["http://a"])
	}
}

// TestPickAvoidReturnsOtherWorker: pick(avoid) must move off the avoided
// worker when any other healthy worker exists, and fall back to it only
// when it is the sole healthy choice.
func TestPickAvoidReturnsOtherWorker(t *testing.T) {
	c := New(Options{Workers: []string{"http://a", "http://b"}})
	wa := c.register("http://a")
	wb := c.register("http://b")
	for i := 0; i < 10; i++ {
		if w := c.pick(wa); w != wb {
			t.Fatalf("pick(avoid=a) = %v, want b", w)
		}
	}
	wb.fail(1)
	if w := c.pick(wa); w != wa {
		t.Errorf("pick(avoid=a) with b suspect = %v, want the avoided sole survivor a", w)
	}
}

// TestPickChurn hammers pick concurrently with registration, heartbeats
// and failure marking — a -race exercise that also asserts pick never
// returns an unhealthy worker while healthy ones exist.
func TestPickChurn(t *testing.T) {
	c := New(Options{Workers: []string{"http://w0", "http://w1", "http://w2"}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // registrations and revivals
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Register(fmt.Sprintf("http://w%d", i%5))
		}
	}()
	go func() { // load reports
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.HeartbeatLoad(fmt.Sprintf("http://w%d", i%5), &LoadReport{QueueDepth: i % 7})
		}
	}()
	go func() { // failures
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, w := range c.snapshotWorkers() {
				if i%3 == 0 {
					w.fail(c.opts.SuspectAfter)
				}
			}
		}
	}()
	deadline := time.Now().Add(200 * time.Millisecond)
	picks := 0
	for time.Now().Before(deadline) {
		if w := c.pick(nil); w != nil {
			picks++
		}
	}
	close(stop)
	wg.Wait()
	if picks == 0 {
		t.Error("pick never returned a worker under churn")
	}
}

// TestProbeSuppressedAfterPushHeartbeat: the probe loop must not
// re-probe a worker heard from within the heartbeat interval (push
// heartbeats already prove liveness), and must resume probing once the
// worker goes quiet.
func TestProbeSuppressedAfterPushHeartbeat(t *testing.T) {
	var probes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			probes.Add(1)
		}
		fmt.Fprintln(w, "ok")
	}))
	defer ts.Close()

	c := New(Options{Workers: []string{ts.URL}, HeartbeatInterval: 50 * time.Millisecond})
	ctx := context.Background()

	// Registration just recorded contact: an immediate probe round is
	// suppressed.
	c.probeAll(ctx)
	if got := probes.Load(); got != 0 {
		t.Fatalf("probes after fresh contact = %d, want 0", got)
	}

	// Quiet past the interval: probing resumes.
	time.Sleep(60 * time.Millisecond)
	c.probeAll(ctx)
	if got := probes.Load(); got != 1 {
		t.Fatalf("probes after going quiet = %d, want 1", got)
	}

	// A push heartbeat re-suppresses the next round.
	c.Heartbeat(ts.URL)
	c.probeAll(ctx)
	if got := probes.Load(); got != 1 {
		t.Errorf("probes after push heartbeat = %d, want still 1", got)
	}
}

// TestSpeculateThresholdArming: the percentile threshold must stay
// disarmed until enough latencies are observed, then answer with at least
// the floor.
func TestSpeculateThresholdArming(t *testing.T) {
	c := New(Options{Workers: []string{"http://a"}, SpeculatePct: 0.9})
	if th := c.speculateThreshold(); th != 0 {
		t.Fatalf("threshold with no samples = %v, want 0", th)
	}
	for i := 0; i < speculateMinSamples-1; i++ {
		c.observeLatency(time.Millisecond)
	}
	if th := c.speculateThreshold(); th != 0 {
		t.Fatalf("threshold under-sampled = %v, want 0", th)
	}
	c.observeLatency(time.Millisecond)
	if th := c.speculateThreshold(); th < speculateFloor {
		t.Errorf("armed threshold = %v, want >= floor %v", th, speculateFloor)
	}

	off := New(Options{Workers: []string{"http://a"}})
	off.observeLatency(time.Millisecond) // must not panic with speculation off
	if th := off.speculateThreshold(); th != 0 {
		t.Errorf("threshold with speculation disabled = %v, want 0", th)
	}
}
