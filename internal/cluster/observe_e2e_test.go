package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sprinklers/internal/service"
	"sprinklers/internal/trace"
)

// TestTraceEndToEndTwoWorkers: a traced 2-worker cluster run produces a
// merged timeline on the coordinator — spans from both workers with
// coordinator parentage, one dispatch span per dispatched job — while
// the study output stays byte-identical to an untraced local run.
func TestTraceEndToEndTwoWorkers(t *testing.T) {
	w1 := newNode(t, service.Options{Node: "w1"})
	w2 := newNode(t, service.Options{Node: "w2"})
	coordinator, _ := newCoordinator(t, fastOptions(w1.url(), w2.url()),
		service.Options{Node: "coord"})
	spec := testSpec("trace-e2e")
	id := service.StudyID(spec)

	// Byte identity first: tracing is on by default in this cluster and
	// the oracle run is untraced, so equality proves tracing is inert.
	remote := runRemote(t, coordinator, spec)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("traced cluster results differ from untraced local run:\n%s\nvs\n%s", remote, local)
	}

	client := &service.Client{BaseURL: coordinator.url()}
	tr, err := client.Trace(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}

	byID := map[string]trace.Span{}
	byName := map[string]int{}
	nodes := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.ID != "" {
			if _, dup := byID[sp.ID]; dup {
				t.Fatalf("span id %s appears twice in the merged timeline", sp.ID)
			}
			byID[sp.ID] = sp
		}
		byName[sp.Name]++
		nodes[sp.Node] = true
		if sp.Trace != id {
			t.Fatalf("span %s/%s has trace %q, want %q", sp.Node, sp.Name, sp.Trace, id)
		}
	}

	// Spans from both workers and the coordinator, merged.
	for _, n := range []string{"coord", "w1", "w2"} {
		if !nodes[n] {
			t.Errorf("merged timeline has no spans from node %s (nodes: %v)", n, tr.Nodes)
		}
	}

	// One dispatch span per dispatched job (fault-free run: exactly
	// points x replicas), and one worker-side job span for each.
	wantJobs := int(totalReplicas(spec))
	dispatched := int(coordinator.srv.Counters().JobsDispatched.Load())
	if byName["dispatch"] != dispatched {
		t.Errorf("dispatch spans = %d, want %d (JobsDispatched)", byName["dispatch"], dispatched)
	}
	if byName["dispatch"] != wantJobs {
		t.Errorf("dispatch spans = %d, want %d (points x replicas)", byName["dispatch"], wantJobs)
	}
	if byName["job"] != wantJobs {
		t.Errorf("worker job spans = %d, want %d", byName["job"], wantJobs)
	}
	if byName["simulate"] != wantJobs {
		t.Errorf("simulate spans = %d, want %d", byName["simulate"], wantJobs)
	}

	// Cross-node parentage: every worker job span hangs off a
	// coordinator lease span, which hangs off a dispatch span, which
	// reaches the study root.
	for _, sp := range tr.Spans {
		if sp.Name != "job" {
			continue
		}
		lease, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("job span %s (node %s) has unresolved parent %q", sp.ID, sp.Node, sp.Parent)
		}
		if lease.Name != "lease" || lease.Node != "coord" {
			t.Fatalf("job span %s parent is %s/%s, want coord/lease", sp.ID, lease.Node, lease.Name)
		}
		dispatch, ok := byID[lease.Parent]
		if !ok || dispatch.Name != "dispatch" {
			t.Fatalf("lease span %s does not parent back to a dispatch span", lease.ID)
		}
		root, ok := byID[dispatch.Parent]
		if !ok || root.Name != "study" {
			t.Fatalf("dispatch span %s does not parent back to the study root", dispatch.ID)
		}
	}

	// The chrome export of the same timeline is valid trace-event JSON
	// with one process per node.
	resp, err := http.Get(coordinator.url() + "/api/v1/trace/" + id + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "M" {
			pids[ev.Pid] = true
		}
	}
	if len(pids) < 3 {
		t.Errorf("chrome trace has %d processes, want >= 3 (coord + 2 workers)", len(pids))
	}
}

// TestSlowJobWarningWithoutSpeculation: with speculation disabled, a job
// outstanding past the observed dispatch-latency percentile still
// produces a structured warning carrying the study's trace id.
func TestSlowJobWarningWithoutSpeculation(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(&buf, format+"\n", args...)
		mu.Unlock()
	}

	wFast := newNode(t, service.Options{Node: "fast"})
	wSlow := newNode(t, service.Options{Node: "slow", JobDelay: 150 * time.Millisecond})
	// SpeculatePct stays zero: no backups, but the latency percentile
	// still drives slow-job warnings.
	coordinator, coord := newCoordinator(t, fastOptions(wFast.url()),
		service.Options{Node: "coord", Logf: logf})

	// Train the percentile on fast dispatches (8 jobs = the estimator's
	// minimum sample count).
	runRemote(t, coordinator, testSpec("warn-train"))

	// Swap the fleet: the straggler joins, the fast worker dies.
	coord.HeartbeatLoad(wSlow.url(), nil)
	wFast.ts.Close()
	time.Sleep(150 * time.Millisecond) // let the health loop suspect the dead worker

	// A different seed gives the second study fresh point identities —
	// cache hits from the training study would dispatch nothing.
	slowSpec := testSpec("warn-slow")
	slowSpec.Seed = 42
	runRemote(t, coordinator, slowSpec)

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "job outstanding past dispatch-latency percentile") {
		t.Fatalf("no slow-job warning in logs:\n%s", out)
	}
	if !strings.Contains(out, "trace="+service.StudyID(slowSpec)) {
		t.Errorf("slow-job warning does not carry the study trace id %s:\n%s", service.StudyID(slowSpec), out)
	}
	if strings.Contains(out, "speculative backup launched") {
		t.Errorf("speculation fired despite SpeculatePct=0:\n%s", out)
	}
}
