// The chaos suite: every test runs a real coordinator daemon against real
// worker daemons (httptest servers over the actual HTTP surface), injects
// a fault — a worker killed mid-replica, transport errors on dispatch, a
// fleet entirely down, a coordinator restart mid-study — and asserts the
// two invariants the cluster exists to hold:
//
//  1. The study completes with results byte-identical to a fault-free
//     single-node run.
//  2. No replica is ever simulated twice: the sum of ReplicasComputed
//     across every node equals points x replicas exactly.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sprinklers/internal/cluster"
	"sprinklers/internal/experiment"
	"sprinklers/internal/faultinject"
	"sprinklers/internal/service"
)

func testSpec(name string) experiment.Spec {
	return experiment.Spec{
		Name:       name,
		Kind:       experiment.SimStudy,
		Algorithms: experiment.Algs(experiment.Sprinklers, experiment.LoadBalanced),
		Traffic:    experiment.Traffics(experiment.UniformTraffic),
		Loads:      []float64{0.3, 0.6},
		Sizes:      []int{8},
		Replicas:   2,
		Slots:      1_000,
		Seed:       1,
	}
}

// totalReplicas is the job count of a spec: points x replicas.
func totalReplicas(spec experiment.Spec) int64 {
	return int64(spec.WithDefaults().NumPoints() * spec.WithDefaults().Replicas)
}

// node is one daemon: the server core plus its HTTP front.
type node struct {
	srv *service.Server
	ts  *httptest.Server
}

func (n *node) url() string { return n.ts.URL }

func newNode(t *testing.T, opts service.Options) *node {
	t.Helper()
	if opts.CacheDir == "" {
		opts.CacheDir = t.TempDir()
	}
	srv, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})
	return &node{srv: srv, ts: ts}
}

// fastOptions are cluster timings scaled for tests: tight heartbeats and
// backoffs so suspicion and failover land in milliseconds.
func fastOptions(workers ...string) cluster.Options {
	return cluster.Options{
		Workers:           workers,
		Lease:             30 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      2,
		BaseBackoff:       2 * time.Millisecond,
		MaxBackoff:        20 * time.Millisecond,
		Seed:              7,
	}
}

// newCoordinator assembles a coordinator daemon over the given cluster
// options and starts its health loop.
func newCoordinator(t *testing.T, copts cluster.Options, sopts service.Options) (*node, *cluster.Coordinator) {
	t.Helper()
	coord := cluster.New(copts)
	sopts.Cluster = coord
	n := newNode(t, sopts)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	coord.Start(ctx)
	return n, coord
}

// localReference runs spec in-process — the byte-identity oracle.
func localReference(t *testing.T, spec experiment.Spec) []byte {
	t.Helper()
	results, err := experiment.RunStudy(context.Background(), spec, experiment.StudyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(results)
	return b
}

// runRemote runs spec through the coordinator and returns the marshaled
// results.
func runRemote(t *testing.T, coordinator *node, spec experiment.Spec) []byte {
	t.Helper()
	client := &service.Client{BaseURL: coordinator.url()}
	results, err := client.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(results)
	return b
}

// replicasComputedAcross sums ReplicasComputed over the given nodes.
func replicasComputedAcross(nodes ...*node) int64 {
	var sum int64
	for _, n := range nodes {
		sum += n.srv.Counters().ReplicasComputed.Load()
	}
	return sum
}

// TestClusterMatchesLocalByteIdentical: a fault-free cluster run returns
// exactly the bytes of a local run, all replicas run on workers (none on
// the coordinator), and no replica runs twice.
func TestClusterMatchesLocalByteIdentical(t *testing.T) {
	w1 := newNode(t, service.Options{})
	w2 := newNode(t, service.Options{})
	coordinator, coord := newCoordinator(t, fastOptions(w1.url(), w2.url()), service.Options{})
	spec := testSpec("cluster-identity")

	remote := runRemote(t, coordinator, spec)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("cluster results differ from local:\n%s\nvs\n%s", remote, local)
	}

	want := totalReplicas(spec)
	if got := replicasComputedAcross(w1, w2); got != want {
		t.Errorf("workers computed %d replicas, want %d", got, want)
	}
	if got := coordinator.srv.Counters().ReplicasComputed.Load(); got != 0 {
		t.Errorf("coordinator computed %d replicas locally, want 0", got)
	}
	if got := coordinator.srv.Counters().JobsDispatched.Load(); got < want {
		t.Errorf("JobsDispatched = %d, want >= %d", got, want)
	}
	if s := coord.Snapshot(); s.WorkersHealthy != 2 || s.WorkersTotal != 2 {
		t.Errorf("worker counts = %+v, want 2/2", s)
	}
}

// TestWorkerCrashMidReplicaFailsOver: one worker is killed at an exact
// simulation slot mid-replica (and stays dead — every later connection to
// it is severed, heartbeats included). The study must still complete
// byte-identical, the lost job must move to the surviving worker, and the
// crashed (incomplete) replica must be the ONLY one recomputed: the total
// computed across all nodes stays exactly points x replicas.
func TestWorkerCrashMidReplicaFailsOver(t *testing.T) {
	plan := faultinject.NewPlan(1).CrashWorkerAt(2, 150)
	w1 := newNode(t, service.Options{Fault: plan})
	w2 := newNode(t, service.Options{})
	coordinator, coord := newCoordinator(t, fastOptions(w1.url(), w2.url()), service.Options{})
	spec := testSpec("cluster-crash")

	remote := runRemote(t, coordinator, spec)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("results after worker crash differ from local:\n%s\nvs\n%s", remote, local)
	}
	if !plan.Dead() {
		t.Fatal("the scheduled crash never fired")
	}
	c := coordinator.srv.Counters()
	if got := c.JobsRetried.Load(); got == 0 {
		t.Error("JobsRetried = 0, want > 0 after a worker death")
	}
	if got := c.JobsRedispatched.Load(); got == 0 {
		t.Error("JobsRedispatched = 0, want > 0: the crashed job must move to the surviving worker")
	}
	want := totalReplicas(spec)
	if got := replicasComputedAcross(coordinator, w1, w2); got != want {
		t.Errorf("computed %d replicas across the cluster, want exactly %d (no duplicate simulation)", got, want)
	}
	if s := coord.Snapshot(); s.WorkersHealthy != 1 {
		t.Errorf("healthy workers = %d, want 1 after the crash", s.WorkersHealthy)
	}
}

// TestInjectedTransportErrorsAreRetried: every other dispatch dies with an
// injected connection error. Retries (with backoff) must absorb all of it:
// same bytes, no duplicate simulation.
func TestInjectedTransportErrorsAreRetried(t *testing.T) {
	plan := faultinject.NewPlan(3).FailEveryNth(2)
	copts := fastOptions() // workers added below; transport wraps dispatches only
	copts.Transport = &faultinject.Transport{
		Plan:  plan,
		Match: func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/api/v1/jobs") },
	}
	w1 := newNode(t, service.Options{})
	w2 := newNode(t, service.Options{})
	copts.Workers = []string{w1.url(), w2.url()}
	coordinator, _ := newCoordinator(t, copts, service.Options{})
	spec := testSpec("cluster-flaky-transport")

	remote := runRemote(t, coordinator, spec)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("results under transport faults differ from local:\n%s\nvs\n%s", remote, local)
	}
	if plan.Injected() == 0 {
		t.Fatal("no faults were injected; the test exercised nothing")
	}
	c := coordinator.srv.Counters()
	if got := c.JobsRetried.Load(); got == 0 {
		t.Error("JobsRetried = 0, want > 0 under injected dispatch faults")
	}
	want := totalReplicas(spec)
	if got := replicasComputedAcross(coordinator, w1, w2); got != want {
		t.Errorf("computed %d replicas, want exactly %d", got, want)
	}
}

// TestAllWorkersDownDegradesToLocal: with the whole fleet unreachable the
// coordinator must finish the study in-process, report itself degraded on
// /healthz, and still produce identical bytes.
func TestAllWorkersDownDegradesToLocal(t *testing.T) {
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead2 := httptest.NewServer(http.NotFoundHandler())
	u1, u2 := dead1.URL, dead2.URL
	dead1.Close()
	dead2.Close()

	copts := fastOptions(u1, u2)
	copts.SuspectAfter = 1
	copts.MaxAttempts = 2
	coordinator, coord := newCoordinator(t, copts, service.Options{})
	spec := testSpec("cluster-degraded")

	remote := runRemote(t, coordinator, spec)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("degraded-mode results differ from local:\n%s\nvs\n%s", remote, local)
	}
	if !coord.Degraded() {
		t.Error("Degraded() = false with every worker down")
	}
	c := coordinator.srv.Counters()
	want := totalReplicas(spec)
	if got := c.LocalFallbacks.Load(); got != want {
		t.Errorf("LocalFallbacks = %d, want %d: every job must fall back locally", got, want)
	}
	if got := replicasComputedAcross(coordinator); got != want {
		t.Errorf("coordinator computed %d replicas, want %d", got, want)
	}

	resp, err := http.Get(coordinator.url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(body)); got != "degraded" {
		t.Errorf("healthz = %q, want %q", got, "degraded")
	}
}

// TestCoordinatorRestartMidStudyResumesWithoutRecompute: the coordinator
// is stopped mid-study (canceling the run with its checkpoint flushed) and
// a NEW coordinator daemon over the same cache directory takes over. The
// resubmitted study must complete byte-identical, and across the whole
// ordeal — first coordinator, second coordinator, both workers — each
// replica must have been simulated exactly once: completed points resume
// from the checkpoint, completed replicas of interrupted points resurface
// from worker caches via the replica-envelope read path.
func TestCoordinatorRestartMidStudyResumesWithoutRecompute(t *testing.T) {
	w1 := newNode(t, service.Options{})
	w2 := newNode(t, service.Options{})
	cacheDir := t.TempDir()
	spec := testSpec("cluster-coord-restart")
	spec.Slots = 4_000 // long enough to interrupt

	first, _ := newCoordinator(t, fastOptions(w1.url(), w2.url()), service.Options{CacheDir: cacheDir})
	client := &service.Client{BaseURL: first.url()}
	ctx := context.Background()
	status, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least one recorded point, then tear the coordinator down.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := client.Status(ctx, status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("study made no progress before the deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	shutCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := first.srv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	cancel()
	first.ts.Close()

	second, _ := newCoordinator(t, fastOptions(w1.url(), w2.url()), service.Options{CacheDir: cacheDir})
	remote := runRemote(t, second, spec)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("post-restart results differ from local:\n%s\nvs\n%s", remote, local)
	}
	want := totalReplicas(spec)
	if got := replicasComputedAcross(first, second, w1, w2); got != want {
		t.Errorf("computed %d replicas across both coordinator lives, want exactly %d (no duplicate simulation)", got, want)
	}
}

// TestWorkerRejoinsAfterRegister: a worker marked suspect is revived by
// push registration (the -join flow), and new studies use it again.
func TestWorkerRejoinsAfterRegister(t *testing.T) {
	w1 := newNode(t, service.Options{})
	copts := fastOptions(w1.url())
	copts.HeartbeatInterval = time.Hour // no probe loop: only explicit registration revives
	coordinator, coord := newCoordinator(t, copts, service.Options{})

	// Knock the worker out by URL swap: suspect it via failed dispatches.
	w1.ts.Close()
	spec := testSpec("cluster-rejoin-1")
	runRemote(t, coordinator, spec) // completes via local fallback
	if s := coord.Snapshot(); s.WorkersHealthy != 0 {
		t.Fatalf("healthy = %d, want 0 after the worker died", s.WorkersHealthy)
	}

	// A fresh worker registers over HTTP (what JoinCluster posts).
	w2 := newNode(t, service.Options{})
	body := strings.NewReader(`{"url":"` + w2.url() + `"}`)
	resp, err := http.Post(coordinator.url()+"/api/v1/cluster/register", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s := coord.Snapshot(); s.WorkersHealthy != 1 || s.WorkersTotal != 2 {
		t.Fatalf("after register: %+v, want 1 healthy of 2", s)
	}

	spec2 := testSpec("cluster-rejoin-2")
	spec2.Seed = 42 // physically distinct: the first study's cache must not cover it
	runRemote(t, coordinator, spec2)
	if got := w2.srv.Counters().ReplicasComputed.Load(); got != totalReplicas(spec2) {
		t.Errorf("rejoined worker computed %d replicas, want %d", got, totalReplicas(spec2))
	}
}

// TestFailoverToHealthyPeerIsImmediate: backoff must only gate retries
// against the same (suspect) path — when a healthy peer exists, a failed
// job moves there with no sleep at all. The regression this pins: with
// BaseBackoff cranked to 5s, a study whose first worker is dead must still
// finish in a fraction of one backoff period.
func TestFailoverToHealthyPeerIsImmediate(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	w2 := newNode(t, service.Options{})

	copts := fastOptions(deadURL, w2.url())
	copts.BaseBackoff = 5 * time.Second
	copts.MaxBackoff = 5 * time.Second
	copts.SuspectAfter = 1
	copts.HeartbeatInterval = time.Hour // no probe loop: dispatch failures drive health
	coordinator, _ := newCoordinator(t, copts, service.Options{})
	spec := testSpec("cluster-immediate-failover")

	start := time.Now()
	remote := runRemote(t, coordinator, spec)
	elapsed := time.Since(start)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("failover results differ from local:\n%s\nvs\n%s", remote, local)
	}
	// The jittered sleep for one 5s-backoff retry is at least 2.5s; an
	// immediate failover finishes the whole study well under that.
	if elapsed >= copts.BaseBackoff/2 {
		t.Errorf("study took %v with a dead first worker; failover to the healthy peer must not sleep the %v backoff", elapsed, copts.BaseBackoff)
	}
	c := coordinator.srv.Counters()
	if got := c.JobsRedispatched.Load(); got == 0 {
		t.Error("JobsRedispatched = 0, want > 0: the dead worker's job must move")
	}
}

// TestShedBouncesJobWithoutBackoff: a worker answering 503 + the shed
// header is deliberately rebalancing, not failing — the coordinator must
// re-dispatch immediately (no backoff, no retry accounting) and must not
// mark the shedding worker suspect.
func TestShedBouncesJobWithoutBackoff(t *testing.T) {
	var sheds atomic.Int64
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/api/v1/jobs") {
			sheds.Add(1)
			w.Header().Set(cluster.ShedHeader, "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"shed for rebalancing"}`)
			return
		}
		fmt.Fprintln(w, "ok") // healthz
	}))
	defer shedder.Close()
	real := newNode(t, service.Options{})

	copts := fastOptions(shedder.URL, real.url())
	copts.BaseBackoff = 5 * time.Second
	copts.MaxBackoff = 5 * time.Second
	coordinator, coord := newCoordinator(t, copts, service.Options{})
	spec := testSpec("cluster-shed-bounce")

	start := time.Now()
	remote := runRemote(t, coordinator, spec)
	elapsed := time.Since(start)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("results with a shedding worker differ from local:\n%s\nvs\n%s", remote, local)
	}
	if sheds.Load() == 0 {
		t.Fatal("the shedding worker never saw a job; the test exercised nothing")
	}
	if elapsed >= copts.BaseBackoff/2 {
		t.Errorf("study took %v; shed jobs must re-dispatch with no backoff", elapsed)
	}
	c := coordinator.srv.Counters()
	if got := c.JobsStolen.Load(); got == 0 {
		t.Error("JobsStolen = 0, want > 0 for shed responses")
	}
	if got := c.JobsRetried.Load(); got != 0 {
		t.Errorf("JobsRetried = %d, want 0: a shed is not a failure", got)
	}
	if s := coord.Snapshot(); s.WorkersHealthy != 2 {
		t.Errorf("healthy workers = %d, want 2: shedding must not mark a worker suspect", s.WorkersHealthy)
	}
}

// wideSpec is testSpec with twice the load points — 8 points x 2 replicas
// = 16 jobs, enough runway for stealing and speculation to engage.
func wideSpec(name string) experiment.Spec {
	s := testSpec(name)
	s.Loads = []float64{0.2, 0.4, 0.6, 0.8}
	return s
}

// TestIdleHeartbeatStealsFromDeepWorker: all jobs initially pile onto one
// slow single-slot worker; when an idle worker joins mid-study (push
// heartbeats), its idle reports must trigger stealing — queued jobs are
// shed off the deep worker and complete on the idle one — with bytes and
// the exactly-once invariant intact.
func TestIdleHeartbeatStealsFromDeepWorker(t *testing.T) {
	slow := newNode(t, service.Options{JobSlots: 1, JobDelay: 150 * time.Millisecond})
	fast := newNode(t, service.Options{})

	copts := fastOptions(slow.url()) // only the slow worker is known at start
	copts.Steal = true
	coordinator, _ := newCoordinator(t, copts, service.Options{Parallelism: 4})

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go slow.srv.JoinCluster(ctx, coordinator.url(), slow.url(), 10*time.Millisecond, nil)
	go func() {
		// The idle worker joins once the slow worker's queue has formed.
		time.Sleep(200 * time.Millisecond)
		fast.srv.JoinCluster(ctx, coordinator.url(), fast.url(), 10*time.Millisecond, nil)
	}()

	spec := wideSpec("cluster-steal")
	remote := runRemote(t, coordinator, spec)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("results under work stealing differ from local:\n%s\nvs\n%s", remote, local)
	}
	c := coordinator.srv.Counters()
	if got := c.JobsStolen.Load(); got == 0 {
		t.Error("JobsStolen = 0, want > 0: the idle worker's heartbeat must steal queued jobs")
	}
	if got := fast.srv.Counters().ReplicasComputed.Load(); got == 0 {
		t.Error("the joining worker computed nothing; stolen jobs must land on it")
	}
	want := totalReplicas(spec)
	if got := replicasComputedAcross(slow, fast); got != want {
		t.Errorf("computed %d replicas, want exactly %d: stealing must never duplicate work", got, want)
	}
}

// TestStragglerSpeculativeTail: one worker is a straggler (single slot,
// 300ms stall per job). With speculation armed, slow jobs must be raced by
// backups on the healthy peer: the study finishes near the healthy
// baseline, bytes identical, and every extra simulated replica is a
// counted speculative loser — never aggregated twice.
func TestStragglerSpeculativeTail(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	specOpts := func(workers ...string) cluster.Options {
		copts := fastOptions(workers...)
		copts.Steal = false // isolate speculation from stealing
		copts.SpeculatePct = 0.5
		copts.SpeculateTailK = 8
		return copts
	}
	join := func(n *node, coordinator *node) {
		go n.srv.JoinCluster(ctx, coordinator.url(), n.url(), 10*time.Millisecond, nil)
	}

	// Healthy baseline: same topology, no straggler.
	b1 := newNode(t, service.Options{})
	b2 := newNode(t, service.Options{})
	baseCoord, _ := newCoordinator(t, specOpts(b1.url(), b2.url()), service.Options{Parallelism: 4})
	join(b1, baseCoord)
	join(b2, baseCoord)
	baseStart := time.Now()
	runRemote(t, baseCoord, wideSpec("cluster-speculate-baseline"))
	healthyWall := time.Since(baseStart)

	// Straggler run.
	straggler := newNode(t, service.Options{JobSlots: 1, JobDelay: 300 * time.Millisecond})
	healthy := newNode(t, service.Options{})
	coordinator, coord := newCoordinator(t, specOpts(straggler.url(), healthy.url()), service.Options{Parallelism: 4})
	join(straggler, coordinator)
	join(healthy, coordinator)

	spec := wideSpec("cluster-speculate")
	start := time.Now()
	remote := runRemote(t, coordinator, spec)
	wall := time.Since(start)
	if local := localReference(t, spec); !bytes.Equal(remote, local) {
		t.Errorf("results under speculation differ from local:\n%s\nvs\n%s", remote, local)
	}

	c := coordinator.srv.Counters()
	launched := c.SpeculativeLaunched.Load()
	if launched == 0 {
		t.Error("SpeculativeLaunched = 0, want > 0: jobs stuck behind the straggler must get backups")
	}
	// 1.5x the healthy wall, with generous absolute slack for a loaded
	// 1-CPU CI box: the point is that the straggler's 300ms-per-job stall
	// does not serialize the study tail.
	if bound := healthyWall + healthyWall/2 + 2*time.Second; wall > bound {
		t.Errorf("straggler run took %v, want <= %v (healthy baseline %v)", wall, bound, healthyWall)
	}

	// Let in-flight losers finish before auditing the ledger.
	deadline := time.Now().Add(10 * time.Second)
	for coord.Snapshot().SpeculativePending != 0 {
		if time.Now().After(deadline) {
			t.Fatal("speculative losers never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	wasted := c.SpeculativeWasted.Load()
	extra := replicasComputedAcross(straggler, healthy) - totalReplicas(spec)
	// Every replica beyond points x replicas must be a speculative loser:
	// at least the counted wasted ones, never more than the launched
	// backups (a loser canceled at study teardown may abort uncounted).
	if extra < wasted || extra > launched {
		t.Errorf("computed %d extra replicas with %d wasted / %d launched; losers must be CAS-deduped and counted",
			extra, wasted, launched)
	}
}

// TestClusterAdaptiveMatchesLocal: an adaptive study dispatched across a
// cluster — dynamic refinement points, early-stopped replicas and all — is
// byte-identical to a local run, every simulated replica runs on a worker,
// and the fleet simulates exactly the replicas the local run does (the
// early-stopping decisions are part of the deterministic trajectory, so
// remote execution saves exactly as much work).
func TestClusterAdaptiveMatchesLocal(t *testing.T) {
	w1 := newNode(t, service.Options{})
	w2 := newNode(t, service.Options{})
	coordinator, _ := newCoordinator(t, fastOptions(w1.url(), w2.url()), service.Options{})
	spec, err := experiment.BuiltinSpec("adaptive-smoke")
	if err != nil {
		t.Fatal(err)
	}

	var lctr experiment.Counters
	local, err := experiment.RunStudy(context.Background(), spec, experiment.StudyConfig{Counters: &lctr})
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := json.Marshal(local)

	remote := runRemote(t, coordinator, spec)
	if !bytes.Equal(remote, lb) {
		t.Errorf("cluster adaptive results differ from local:\n%s\nvs\n%s", remote, lb)
	}
	if got := coordinator.srv.Counters().ReplicasComputed.Load(); got != 0 {
		t.Errorf("coordinator computed %d replicas locally, want 0", got)
	}
	if got, want := replicasComputedAcross(w1, w2), lctr.ReplicasComputed.Load(); got != want {
		t.Errorf("workers computed %d replicas, want the local run's %d (early stopping must replicate)", got, want)
	}
	total := coordinator.srv.TotalCounters()
	if total.PointsRefined == 0 || total.ReplicasEarlyStopped == 0 {
		t.Errorf("adaptive counters did not surface on the coordinator: %+v", total)
	}
}
