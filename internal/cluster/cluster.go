// Package cluster is the fault-tolerant control plane that turns one
// sprinklerd daemon into a coordinator for many: a study's (point, replica)
// jobs are sharded across worker daemons under leases, failures are
// retried with capped exponential backoff and jitter, a worker that stops
// answering is marked suspect and its jobs are re-dispatched to healthy
// peers, and with every worker down the coordinator degrades to local
// execution — a study always completes, and completes byte-identical to a
// single-node run, because the work unit (one content-identified replica)
// computes the same Point on any node.
//
// The coordinator plugs into the experiment engine through
// experiment.StudyConfig.ReplicaRunner, so grid ordering, checkpointing,
// the cache pre-pass and replica aggregation are exactly the single-node
// code paths; this package only decides WHERE a replica runs and what to
// do when that place dies.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sprinklers/internal/experiment"
	"sprinklers/internal/resultcache"
	"sprinklers/internal/stats"
	"sprinklers/internal/trace"
)

// Job sources, reported by workers in JobResponse.Source.
const (
	// SourceComputed: the worker simulated the replica.
	SourceComputed = "computed"
	// SourceCache: the worker served the replica from its local cache.
	SourceCache = "cache"
	// SourcePeer: the worker filled the replica from a sibling's cache.
	SourcePeer = "peer"
)

// JobRequest is one leased (point, replica) dispatch: the normalized spec,
// the point, the replica index, the lease the worker must finish within,
// and the sibling workers it may fill its cache from before simulating.
type JobRequest struct {
	Spec    experiment.Spec     `json:"spec"`
	Point   experiment.PointKey `json:"point"`
	Rep     int                 `json:"rep"`
	LeaseMS int64               `json:"lease_ms,omitempty"`
	Peers   []string            `json:"peers,omitempty"`
}

// JobResponse is a completed job: the replica's measurements and where
// they came from. Spans carries the worker-side trace spans of the job
// when the request carried trace headers — response-only observability
// that never feeds back into results, seeds, or cache keys.
type JobResponse struct {
	Point  experiment.Point `json:"point"`
	Source string           `json:"source"`
	Spans  []trace.Span     `json:"spans,omitempty"`
}

// PermanentError marks a dispatch failure that retrying cannot fix (the
// worker rejected the job as invalid); the coordinator propagates it
// instead of burning the retry budget.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// ShedHeader marks a 503 job response as a deliberate queue shed (work
// stealing), not a failure: the worker is alive and bounced a queued job
// back so an idle peer can take it. The coordinator retries immediately,
// elsewhere, without marking the worker suspect.
const ShedHeader = "X-Sprinklerd-Shed"

// errShed classifies a shed response inside the retry loop.
var errShed = errors.New("cluster: queued job shed by worker for rebalancing")

// Options configures a Coordinator.
type Options struct {
	// Workers lists the worker daemon base URLs known at startup; more may
	// join later via Register.
	Workers []string
	// Lease bounds one job's execution: the dispatch request times out
	// after it (client-side) and the worker aborts the simulation at it
	// (server-side), so a partitioned worker cannot hold a job forever.
	// Default 2m.
	Lease time.Duration
	// HeartbeatInterval is the probe period of the health loop (default
	// 1s). A worker is probed at /healthz; SuspectAfter consecutive
	// failures (probe or dispatch) mark it suspect, and a later successful
	// probe revives it.
	HeartbeatInterval time.Duration
	// SuspectAfter is the consecutive-failure threshold (default 2).
	SuspectAfter int
	// MaxAttempts bounds dispatch attempts per job before the coordinator
	// gives up on the fleet and runs the job locally (default 6).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// between attempts (defaults 50ms and 2s); jitter derives from Seed.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the backoff jitter deterministic for tests (0 = 1).
	Seed int64
	// Transport overrides the dispatch HTTP transport — the fault-
	// injection hook (default http.DefaultTransport).
	Transport http.RoundTripper
	// PointParallelism shards a local-fallback replica's slot execution
	// across this many goroutines (sim.WithParallelism semantics; pure
	// execution policy). Jobs dispatched to workers use each worker's own
	// setting — parallelism is node-local and never on the wire.
	PointParallelism int
	// Steal lets an idle worker's push heartbeat trigger work stealing: the
	// deepest peer with a fresh queue report is asked to shed half its
	// queued (not yet executing) jobs, which re-enter the retry loop and
	// route to the idle worker. Stealing never loses or duplicates work —
	// a shed job has not simulated anything.
	Steal bool
	// SpeculatePct, in (0, 1), arms speculative tail re-execution: when at
	// most SpeculateTailK jobs are in flight and one has been outstanding
	// longer than this percentile of observed dispatch latency, a backup is
	// dispatched to another worker and the first result wins. The loser is
	// deduplicated by the per-replica CAS key; a loser that simulated anyway
	// is counted in SpeculativeWasted, never aggregated. 0 disables.
	SpeculatePct float64
	// SpeculateTailK bounds speculation to the study tail: backups launch
	// only while at most this many RunReplica calls are in flight
	// (default 4).
	SpeculateTailK int
	// Counters receives job-level accounting (required for metrics; nil
	// allocates a private set).
	Counters *experiment.Counters
	// Logger receives structured cluster events (worker lifecycle,
	// re-dispatch, stealing, speculation, slow jobs). Takes precedence
	// over Logf.
	Logger *slog.Logger
	// Logf, when set (and Logger is not), receives one line per notable
	// cluster event — the printf-era hook, kept for existing callers.
	Logf func(format string, args ...any)
	// DispatchHist, when set, observes the latency of every successful
	// job dispatch (send to response decode).
	DispatchHist *stats.Histogram
}

// worker is one tracked worker daemon.
type worker struct {
	url string

	// stealing serializes steal attempts against this worker: at most one
	// shed request is in flight per victim.
	stealing atomic.Bool

	mu      sync.Mutex
	healthy bool
	fails   int // consecutive failures
	// lastContact is the last time this worker answered anything — a probe,
	// a dispatch, or a push heartbeat. The probe loop skips workers heard
	// from within the heartbeat interval.
	lastContact time.Time
	// report is the worker's last pushed load report and when it arrived
	// (zero reportTime = never). Stale reports fall out of placement.
	report      LoadReport
	reportTime  time.Time
	outstanding int // dispatches the coordinator currently has in flight here
}

func (w *worker) ok() {
	w.mu.Lock()
	w.healthy = true
	w.fails = 0
	w.lastContact = time.Now()
	w.mu.Unlock()
}

// fail records one failure and reports whether this crossed the suspect
// threshold (true exactly once per transition).
func (w *worker) fail(suspectAfter int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails++
	if w.healthy && w.fails >= suspectAfter {
		w.healthy = false
		return true
	}
	return false
}

func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// heardWithin reports whether the worker is healthy and answered something
// within d — the probe-suppression predicate. A worker the coordinator has
// outstanding dispatches on also counts as in contact: the dispatch outcome
// (bounded by the lease) is a stronger health signal than a probe, and
// probing a worker mid-simulation only adds load and false suspicion.
// Suspect workers never match — probing is how they revive.
func (w *worker) heardWithin(d time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.healthy {
		return false
	}
	if w.outstanding > 0 {
		return true
	}
	return !w.lastContact.IsZero() && time.Since(w.lastContact) < d
}

// addOutstanding tracks the coordinator's own in-flight dispatches to this
// worker — load signal that needs no report at all.
func (w *worker) addOutstanding(n int) {
	w.mu.Lock()
	w.outstanding += n
	w.mu.Unlock()
}

// load returns the worker's effective load for placement: the coordinator's
// own outstanding dispatches, plus the worker's reported queue depth and
// in-flight jobs when the report is fresher than staleAfter. fresh reports
// whether a report backed the value.
func (w *worker) load(staleAfter time.Duration) (depth int, fresh bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	depth = w.outstanding
	if !w.reportTime.IsZero() && time.Since(w.reportTime) < staleAfter {
		return depth + w.report.QueueDepth + w.report.Inflight, true
	}
	return depth, false
}

// queueDepth returns the worker's reported queue depth when the report is
// fresher than staleAfter — the steal-victim signal (only queued, not yet
// executing, jobs can be shed).
func (w *worker) queueDepth(staleAfter time.Duration) (int, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.reportTime.IsZero() || time.Since(w.reportTime) >= staleAfter {
		return 0, false
	}
	return w.report.QueueDepth, true
}

// Coordinator shards replica jobs across worker daemons and survives their
// deaths. Create one with New, start its health loop with Start, and hang
// RunReplica off experiment.StudyConfig.ReplicaRunner.
type Coordinator struct {
	opts         Options
	httpc        *http.Client
	counters     *experiment.Counters
	log          *slog.Logger
	dispatchHist *stats.Histogram

	rngMu sync.Mutex
	rng   *rand.Rand

	// active counts RunReplica calls in flight — the tail signal that gates
	// speculation. specPending counts speculative losers not yet reaped.
	active      atomic.Int64
	specPending atomic.Int64

	// specLat tracks the latPct percentile of successful dispatch
	// latencies. It is always on — with speculation disabled it still
	// drives slow-job warnings — while speculate gates backup launches.
	// Guarded by specMu.
	specMu    sync.Mutex
	specLat   *stats.P2
	latPct    float64
	speculate bool

	mu      sync.Mutex
	workers []*worker
	rr      int // round-robin cursor
}

// New returns a coordinator for the given workers. Workers start healthy;
// the first heartbeat round corrects optimism within HeartbeatInterval.
func New(opts Options) *Coordinator {
	if opts.Lease <= 0 {
		opts.Lease = 2 * time.Minute
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = time.Second
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 2
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 6
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.SpeculateTailK <= 0 {
		opts.SpeculateTailK = 4
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Coordinator{
		opts:         opts,
		httpc:        &http.Client{Transport: opts.Transport},
		counters:     opts.Counters,
		dispatchHist: opts.DispatchHist,
		rng:          rand.New(rand.NewSource(seed)),
	}
	// The latency percentile is tracked whether or not speculation is
	// armed: slow-job warnings need it on every deployment, including
	// single-worker ones where speculation would be pointless.
	c.speculate = opts.SpeculatePct > 0 && opts.SpeculatePct < 1
	c.latPct = opts.SpeculatePct
	if !c.speculate {
		c.latPct = 0.95
	}
	c.specLat = stats.NewP2(c.latPct)
	if c.counters == nil {
		c.counters = &experiment.Counters{}
	}
	switch {
	case opts.Logger != nil:
		c.log = opts.Logger
	case opts.Logf != nil:
		c.log = trace.LogfLogger(opts.Logf)
	default:
		c.log = slog.New(slog.DiscardHandler)
	}
	for _, u := range opts.Workers {
		c.Register(u)
	}
	return c
}

// UseCounters redirects the coordinator's job accounting onto ctr —
// typically the serving daemon's process-lifetime counters, so /metrics
// shows dispatch/retry/fallback totals. Call before the first dispatch.
func (c *Coordinator) UseCounters(ctr *experiment.Counters) {
	if ctr != nil {
		c.counters = ctr
	}
}

// UseDispatchHist points dispatch-latency observations at h — typically
// the serving daemon's histogram, so /metrics exposes the distribution.
// Call before the first dispatch.
func (c *Coordinator) UseDispatchHist(h *stats.Histogram) {
	if h != nil {
		c.dispatchHist = h
	}
}

// UseLogger redirects the coordinator's structured log output. Call
// before the first dispatch.
func (c *Coordinator) UseLogger(lg *slog.Logger) {
	if lg != nil {
		c.log = lg
	}
}

// Register adds a worker by base URL (idempotent). A re-registering
// worker — e.g. one that restarted — is revived immediately.
func (c *Coordinator) Register(url string) { c.register(url) }

// register adds (or revives) a worker and returns its table entry.
func (c *Coordinator) register(url string) *worker {
	url = strings.TrimSuffix(url, "/")
	if url == "" {
		return nil
	}
	c.mu.Lock()
	for _, w := range c.workers {
		if w.url == url {
			c.mu.Unlock()
			w.ok()
			return w
		}
	}
	w := &worker{url: url, healthy: true}
	w.ok()
	c.workers = append(c.workers, w)
	n := len(c.workers)
	c.mu.Unlock()
	c.log.Info("cluster: worker registered", "worker", url, "total", n)
	return w
}

// Heartbeat records a push heartbeat from a worker (the /cluster/heartbeat
// endpoint), registering it if unknown.
func (c *Coordinator) Heartbeat(url string) { c.HeartbeatLoad(url, nil) }

// HeartbeatLoad records a push heartbeat carrying the worker's load report
// (nil = a bare registration). Contact time is recorded so the probe loop
// stops re-probing workers that just pushed; an idle report from a worker
// may trigger work stealing from the deepest peer.
func (c *Coordinator) HeartbeatLoad(url string, load *LoadReport) {
	w := c.register(url)
	if w == nil {
		return
	}
	if load == nil {
		return
	}
	now := time.Now()
	w.mu.Lock()
	w.report = *load
	w.reportTime = now
	idle := load.QueueDepth == 0 && load.Inflight == 0
	w.mu.Unlock()
	if idle {
		c.maybeSteal(w)
	}
}

// Start runs the health-probe loop until ctx is done: every interval each
// worker's /healthz is probed, failures accumulate toward suspect, and a
// suspect worker that answers again is revived. Start returns immediately.
func (c *Coordinator) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(c.opts.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.probeAll(ctx)
			}
		}
	}()
}

// probeTimeoutFloor is the minimum per-probe timeout, regardless of how
// tight the heartbeat interval is tuned.
const probeTimeoutFloor = time.Second

func (c *Coordinator) probeAll(ctx context.Context) {
	for _, w := range c.snapshotWorkers() {
		if w.heardWithin(c.opts.HeartbeatInterval) {
			// A push heartbeat (or successful dispatch) just came in; a
			// probe would only add load. Suspect workers never match —
			// probing is how they revive.
			continue
		}
		// The probe timeout only bounds a hung worker; it is NOT the probe
		// cadence. Flooring it decouples tightly-tuned heartbeat intervals
		// from probe latency on a loaded machine, where an in-process
		// worker can take tens of milliseconds to answer /healthz —
		// timing out such probes marks perfectly healthy workers suspect.
		timeout := c.opts.HeartbeatInterval
		if timeout < probeTimeoutFloor {
			timeout = probeTimeoutFloor
		}
		pctx, cancel := context.WithTimeout(ctx, timeout)
		err := c.probe(pctx, w.url)
		cancel()
		if err == nil {
			if !w.isHealthy() {
				c.log.Info("cluster: worker revived", "worker", w.url)
			}
			w.ok()
			continue
		}
		if w.fail(c.opts.SuspectAfter) {
			c.log.Warn("cluster: worker marked suspect", "worker", w.url, "cause", "heartbeat", "err", err)
		}
	}
}

func (c *Coordinator) probe(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024)) //nolint:errcheck
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

func (c *Coordinator) snapshotWorkers() []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*worker, len(c.workers))
	copy(out, c.workers)
	return out
}

// healthyURLs returns the healthy workers' base URLs.
func (c *Coordinator) healthyURLs() []string {
	var out []string
	for _, w := range c.snapshotWorkers() {
		if w.isHealthy() {
			out = append(out, w.url)
		}
	}
	return out
}

// Degraded reports whether the cluster has workers configured but none
// healthy — the state /healthz and /metrics surface while the coordinator
// runs jobs locally.
func (c *Coordinator) Degraded() bool {
	c.mu.Lock()
	n := len(c.workers)
	c.mu.Unlock()
	return n > 0 && len(c.healthyURLs()) == 0
}

// Stats is a point-in-time cluster summary for /metrics.
type Stats struct {
	WorkersTotal   int
	WorkersHealthy int
	// SpeculativePending counts speculative losers still in flight: backup
	// races whose slower branch has not returned yet. Tests wait for it to
	// reach zero before asserting the replicas-computed invariant.
	SpeculativePending int
}

// Snapshot returns the cluster's current worker counts.
func (c *Coordinator) Snapshot() Stats {
	c.mu.Lock()
	n := len(c.workers)
	c.mu.Unlock()
	return Stats{
		WorkersTotal:       n,
		WorkersHealthy:     len(c.healthyURLs()),
		SpeculativePending: int(c.specPending.Load()),
	}
}

// backoff sleeps the capped exponential backoff for the given retry
// attempt (1-based), with full jitter drawn from the seeded generator, or
// returns early when ctx dies.
func (c *Coordinator) backoff(ctx context.Context, attempt int) error {
	d := c.opts.BaseBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	c.rngMu.Lock()
	// Half fixed, half jittered: retries spread out without ever being
	// immediate.
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RunReplica executes one (point, replica) job somewhere: on a healthy
// worker under a lease, on another worker after transient failures (capped
// exponential backoff + jitter between attempts), or locally when no
// healthy worker remains or the retry budget is exhausted. It is the
// experiment.StudyConfig.ReplicaRunner of a cluster-mode study.
func (c *Coordinator) RunReplica(ctx context.Context, spec experiment.Spec, key experiment.PointKey, rep int) (experiment.Point, error) {
	c.active.Add(1)
	defer c.active.Add(-1)
	// The dispatch span covers the job's whole coordinator-side life —
	// every attempt, backoff, steal bounce and speculative race — and
	// parents the worker-side spans merged from job responses.
	dsp := trace.FromContext(ctx).Start("dispatch")
	dsp.SetJob(key.String(), rep)
	defer dsp.End()
	ctx = dsp.Context(ctx)
	tc := trace.FromContext(ctx)
	var last *worker
	shed := false
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return experiment.Point{}, err
		}
		w := c.pick(last)
		if w == nil {
			break // nobody healthy: degrade below
		}
		if attempt > 0 && !shed {
			c.counters.JobsRetried.Add(1)
			if last != nil && w != last {
				// Failover to a different healthy worker is immediate:
				// backoff only gates retries against the same (suspect)
				// path, where hammering would make things worse.
				c.counters.JobsRedispatched.Add(1)
				c.log.Info("cluster: job re-dispatched",
					"job", key.String(), "rep", rep, "from", last.url, "to", w.url, "trace", tc.Trace)
				tc.Event("redispatch", "job", key.String(), "from", last.url, "to", w.url)
			} else if err := c.backoff(ctx, attempt); err != nil {
				return experiment.Point{}, err
			}
		}
		shed = false
		c.counters.JobsDispatched.Add(1)
		p, src, winner, err := c.dispatchSpeculate(ctx, w, spec, key, rep)
		if err == nil {
			winner.ok()
			if src == SourcePeer {
				c.counters.PeerCacheFills.Add(1)
			}
			dsp.Attr("worker", winner.url)
			dsp.Attr("source", src)
			return p, nil
		}
		var perm *PermanentError
		if errors.As(err, &perm) {
			return experiment.Point{}, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return experiment.Point{}, cerr
		}
		if errors.Is(err, errShed) {
			// The worker is alive and deliberately bounced the queued job so
			// an idle peer can take it: re-pick immediately with no failure
			// mark, no retry accounting, no backoff.
			c.counters.JobsStolen.Add(1)
			c.log.Info("cluster: job stolen (queue shed)",
				"job", key.String(), "rep", rep, "worker", w.url, "trace", tc.Trace)
			tc.Event("steal", "job", key.String(), "worker", w.url)
			shed = true
			last = w
			continue
		}
		if w.fail(c.opts.SuspectAfter) {
			c.log.Warn("cluster: worker marked suspect", "worker", w.url, "cause", "dispatch", "err", err)
		}
		last = w
	}
	// Degraded mode: the fleet is gone (or spent its retry budget) — the
	// study must still finish, so the replica runs in-process.
	c.counters.LocalFallbacks.Add(1)
	tc.Event("local-fallback", "job", key.String())
	dsp.Attr("source", "local-fallback")
	return experiment.RunReplicaJob(ctx, spec, key, rep, c.opts.PointParallelism, c.counters, nil)
}

// dispatch POSTs one job to a worker under the lease and decodes the
// result. Errors are transient unless wrapped in PermanentError. When
// ctx carries trace context, a lease span wraps the attempt, its ID
// travels in the X-Sprinklerd-Span header so worker-side spans parent
// under it, and the spans the worker attached to the response are
// merged into the coordinator's journal.
func (c *Coordinator) dispatch(ctx context.Context, w *worker, spec experiment.Spec, key experiment.PointKey, rep int) (experiment.Point, string, error) {
	tc := trace.FromContext(ctx)
	lsp := tc.Start("lease")
	lsp.SetJob(key.String(), rep)
	lsp.Attr("worker", w.url)
	defer lsp.End()
	jctx, cancel := context.WithTimeout(ctx, c.opts.Lease)
	defer cancel()
	body, err := json.Marshal(JobRequest{
		Spec:    spec,
		Point:   key,
		Rep:     rep,
		LeaseMS: c.opts.Lease.Milliseconds(),
		Peers:   c.peersOf(w.url),
	})
	if err != nil {
		return experiment.Point{}, "", &PermanentError{err}
	}
	req, err := http.NewRequestWithContext(jctx, http.MethodPost, w.url+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return experiment.Point{}, "", &PermanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	trace.Inject(req.Header, lsp.SpanContext())
	resp, err := c.httpc.Do(req)
	if err != nil {
		return experiment.Point{}, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get(ShedHeader) != "" {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024)) //nolint:errcheck
		return experiment.Point{}, "", errShed
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("cluster: %s: %s: %s", w.url, resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode/100 == 4 {
			return experiment.Point{}, "", &PermanentError{err}
		}
		return experiment.Point{}, "", err
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return experiment.Point{}, "", fmt.Errorf("cluster: %s: decoding job response: %w", w.url, err)
	}
	if tc.Enabled() {
		for _, sp := range jr.Spans {
			// Stamp the coordinator's study onto adopted worker spans so
			// the study filter sees one merged timeline.
			sp.Study = tc.Study
			tc.J.Record(sp)
		}
	}
	return jr.Point, jr.Source, nil
}

// peersOf lists the healthy workers other than url — the siblings a worker
// may fill its cache from before simulating.
func (c *Coordinator) peersOf(url string) []string {
	var out []string
	for _, u := range c.healthyURLs() {
		if u != url {
			out = append(out, u)
		}
	}
	return out
}

// FetchCAS reads one raw cache entry from a node's CAS endpoint. A missing
// key returns (nil, nil) — a miss, not an error.
func FetchCAS(ctx context.Context, httpc *http.Client, baseURL, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(baseURL, "/")+"/api/v1/cas/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024)) //nolint:errcheck
		return nil, nil
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("cluster: cas %s: %s", baseURL, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// casFillTimeout bounds one peer CAS probe during the coordinator's cache
// pre-pass: a dead sibling must cost milliseconds-to-seconds, not a hang.
const casFillTimeout = 3 * time.Second

// WrapCache layers peer cache fill over the coordinator's local store:
// a point missing locally is fetched from healthy siblings' CAS before the
// study schedules any simulation, then stored locally (validation — and
// quarantine of a corrupt fill — happens in the experiment layer's decode
// path, same as any local entry).
func (c *Coordinator) WrapCache(local *resultcache.Store) experiment.PointCache {
	return &peerCache{c: c, local: local}
}

type peerCache struct {
	c     *Coordinator
	local *resultcache.Store
}

func (p *peerCache) Get(key string) ([]byte, bool, error) {
	b, ok, err := p.local.Get(key)
	if ok || err != nil {
		return b, ok, err
	}
	for _, url := range p.c.healthyURLs() {
		ctx, cancel := context.WithTimeout(context.Background(), casFillTimeout)
		b, err := FetchCAS(ctx, p.c.httpc, url, key)
		cancel()
		if err != nil || b == nil {
			continue // a sick peer is a miss, not a failed study
		}
		if err := p.local.Put(key, b); err != nil {
			return nil, false, err
		}
		p.c.counters.PeerCacheFills.Add(1)
		return b, true, nil
	}
	return nil, false, nil
}

func (p *peerCache) Put(key string, val []byte) error { return p.local.Put(key, val) }

// Quarantine forwards to the local store, so a corrupt entry (locally
// written or peer-filled) is set aside exactly like in single-node mode.
func (p *peerCache) Quarantine(key string) error { return p.local.Quarantine(key) }
