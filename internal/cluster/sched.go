// Load-aware scheduling: the fast half of the fault-tolerant cluster.
// Workers report queue depth, in-flight jobs and an EWMA of slots/sec in
// their push heartbeats; the coordinator places jobs by power-of-two-choices
// over those reports (degrading to exact round-robin when loads are equal
// or reports are stale), lets an idle worker's heartbeat steal queued jobs
// from the deepest peer, and near the study tail races a slow job against a
// speculative backup on another worker — first result wins, the loser is
// deduplicated by the per-replica CAS key and only ever counted, never
// aggregated.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sprinklers/internal/experiment"
	"sprinklers/internal/trace"
)

// LoadReport is the load a worker pushes with its heartbeats: jobs waiting
// for an execution slot, jobs currently simulating, and an exponentially
// weighted moving average of simulated slots per second.
type LoadReport struct {
	QueueDepth  int     `json:"queue_depth"`
	Inflight    int     `json:"inflight"`
	SlotsPerSec float64 `json:"slots_per_sec,omitempty"`
}

// staleAfter is how long a pushed load report stays placement-relevant:
// past three heartbeat intervals the worker has missed beats (or never
// pushed at all) and placement falls back to round-robin.
func (c *Coordinator) staleAfter() time.Duration {
	return 3 * c.opts.HeartbeatInterval
}

// pick chooses the worker for one dispatch: power-of-two-choices over the
// first two healthy candidates in round-robin order, by effective load
// (the coordinator's own outstanding dispatches plus the worker's fresh
// queue/inflight report). Ties go to round-robin order, so equal loads —
// including the no-reports case — degrade to exact round-robin. A worker
// equal to avoid is only returned when it is the sole healthy one (a
// failed job should move, not hammer the same suspect). nil means no
// healthy worker.
func (c *Coordinator) pick(avoid *worker) *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.workers)
	if n == 0 {
		return nil
	}
	var first, second, fallback *worker
	for i := 0; i < n; i++ {
		w := c.workers[(c.rr+i)%n]
		if !w.isHealthy() {
			continue
		}
		if w == avoid {
			fallback = w
			continue
		}
		if first == nil {
			first = w
			continue
		}
		second = w
		break
	}
	c.rr = (c.rr + 1) % n
	if first == nil {
		return fallback
	}
	if second == nil {
		return first
	}
	stale := c.staleAfter()
	l1, _ := first.load(stale)
	l2, _ := second.load(stale)
	if l2 < l1 {
		return second
	}
	return first
}

// maybeSteal reacts to an idle worker's heartbeat: the deepest healthy peer
// with a fresh queue report is asked to shed half its queued jobs. The shed
// jobs bounce back to their waiting RunReplica calls, which re-pick — and
// the idle worker is now the least-loaded choice. At most one steal per
// victim is in flight at a time; a failed shed just waits for the next idle
// heartbeat.
func (c *Coordinator) maybeSteal(thief *worker) {
	if !c.opts.Steal {
		return
	}
	stale := c.staleAfter()
	var victim *worker
	depth := 0
	for _, w := range c.snapshotWorkers() {
		if w == thief || !w.isHealthy() {
			continue
		}
		if d, fresh := w.queueDepth(stale); fresh && d > depth {
			victim, depth = w, d
		}
	}
	if victim == nil || !victim.stealing.CompareAndSwap(false, true) {
		return
	}
	n := (depth + 1) / 2
	go func() {
		defer victim.stealing.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.HeartbeatInterval)
		defer cancel()
		shed, err := c.shed(ctx, victim.url, n)
		if err != nil {
			c.log.Warn("cluster: steal failed", "victim", victim.url, "thief", thief.url, "err", err)
			return
		}
		if shed > 0 {
			c.log.Info("cluster: queued jobs shed to idle worker",
				"thief", thief.url, "victim", victim.url, "shed", shed)
		}
	}()
}

// shed asks a worker to bounce up to n queued jobs back to the coordinator
// and returns how many it actually shed.
func (c *Coordinator) shed(ctx context.Context, url string, n int) (int, error) {
	body, err := json.Marshal(map[string]int{"n": n})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(url, "/")+"/api/v1/jobs/shed", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024)) //nolint:errcheck
		return 0, fmt.Errorf("cluster: shed %s: %s", url, resp.Status)
	}
	var out struct {
		Shed int `json:"shed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Shed, nil
}

// observeLatency feeds one successful dispatch latency into the
// percentile estimator behind speculation and slow-job warnings.
func (c *Coordinator) observeLatency(d time.Duration) {
	c.specMu.Lock()
	c.specLat.Add(float64(d))
	c.specMu.Unlock()
}

// speculateMinSamples is how many dispatch latencies must be observed
// before the percentile is trusted; speculateFloor bounds the threshold
// from below so a burst of cache-hit dispatches cannot make every job
// "slow".
const (
	speculateMinSamples = 8
	speculateFloor      = 5 * time.Millisecond
)

// speculateThreshold returns how long a dispatch may run before it
// counts as slow (warning + backup launch), or 0 while the percentile
// is under-sampled.
func (c *Coordinator) speculateThreshold() time.Duration {
	c.specMu.Lock()
	defer c.specMu.Unlock()
	if c.specLat.Count() < speculateMinSamples {
		return 0
	}
	d := time.Duration(c.specLat.Value())
	if d < speculateFloor {
		d = speculateFloor
	}
	return d
}

// send runs one dispatch with the coordinator's outstanding-load accounting
// around it, observing the latency of successful attempts.
func (c *Coordinator) send(ctx context.Context, w *worker, spec experiment.Spec, key experiment.PointKey, rep int) (experiment.Point, string, error) {
	w.addOutstanding(1)
	defer w.addOutstanding(-1)
	start := time.Now()
	p, src, err := c.dispatch(ctx, w, spec, key, rep)
	if err == nil {
		c.dispatchHist.Observe(time.Since(start))
	}
	return p, src, err
}

// specResult is one branch of a speculative race.
type specResult struct {
	p   experiment.Point
	src string
	err error
	w   *worker
}

// dispatchSpeculate runs one dispatch, racing it against a speculative
// backup on another worker when the study is near its tail (at most
// SpeculateTailK jobs in flight) and the primary has been outstanding
// longer than the observed latency percentile. The first successful result
// wins and is the only one returned to the study; the loser is reaped in
// the background — it either deduplicates via the per-replica CAS key
// (cache or peer read) or, having simulated anyway, is counted in
// SpeculativeWasted. The returned worker is the one that produced the
// result (for health credit).
func (c *Coordinator) dispatchSpeculate(ctx context.Context, w *worker, spec experiment.Spec, key experiment.PointKey, rep int) (experiment.Point, string, *worker, error) {
	start := time.Now()
	ch := make(chan specResult, 2)
	go func() {
		p, src, err := c.send(ctx, w, spec, key, rep)
		ch <- specResult{p, src, err, w}
	}()
	inflight := 1
	backup := false
	warned := false
	// Poll instead of arming one timer at the entry threshold: the
	// percentile may only become available (or move) while this dispatch is
	// already stuck behind a straggler.
	poll := c.opts.HeartbeatInterval
	if poll > 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	timer := time.NewTimer(poll)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				c.observeLatency(time.Since(start))
				if inflight > 0 {
					c.specPending.Add(1)
					go c.reapLoser(ch)
				}
				return r.p, r.src, r.w, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				return experiment.Point{}, "", w, firstErr
			}
			// The other branch is still running; wait for it.
		case <-timer.C:
			if th := c.speculateThreshold(); th > 0 && time.Since(start) >= th {
				// The straggler warning fires regardless of speculation:
				// on a single-worker deployment it is the only signal a
				// job is stuck behind the fleet's own latency history.
				if !warned {
					warned = true
					tc := trace.FromContext(ctx)
					c.log.Warn("cluster: job outstanding past dispatch-latency percentile",
						"job", key.String(), "rep", rep, "worker", w.url,
						"elapsed_ms", time.Since(start).Milliseconds(),
						"threshold_ms", th.Milliseconds(),
						"pct", c.latPct, "trace", tc.Trace)
					tc.Event("slow-job", "job", key.String(), "worker", w.url)
				}
				if c.speculate && !backup && c.active.Load() <= int64(c.opts.SpeculateTailK) {
					if bw := c.pick(w); bw != nil && bw != w {
						backup = true
						inflight++
						c.counters.SpeculativeLaunched.Add(1)
						c.counters.JobsDispatched.Add(1)
						c.log.Info("cluster: speculative backup launched",
							"job", key.String(), "rep", rep, "backup", bw.url, "primary", w.url,
							"pct", c.latPct, "trace", trace.FromContext(ctx).Trace)
						trace.FromContext(ctx).Event("speculate", "job", key.String(), "backup", bw.url, "primary", w.url)
						go func() {
							p, src, err := c.send(ctx, bw, spec, key, rep)
							ch <- specResult{p, src, err, bw}
						}()
					}
				}
			}
			timer.Reset(poll)
		case <-ctx.Done():
			// The study is gone; the in-flight sends abort with it (the
			// channel is buffered, so they never leak).
			return experiment.Point{}, "", w, ctx.Err()
		}
	}
}

// reapLoser accounts the slower branch of a speculative race after the
// winner has already been returned. A loser that served from its cache or
// a peer deduplicated via the CAS key — free. A loser that simulated is
// wasted work, counted so the replicas-computed invariant can be stated
// exactly: computed == points x replicas + SpeculativeWasted. An errored
// loser (lease expiry, cancellation, a real death) computed nothing extra
// and is left to the health machinery.
func (c *Coordinator) reapLoser(ch <-chan specResult) {
	r := <-ch
	if r.err == nil {
		r.w.ok()
		if r.src == SourceComputed {
			c.counters.SpeculativeWasted.Add(1)
		}
	}
	c.specPending.Add(-1)
}
