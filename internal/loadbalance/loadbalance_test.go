package loadbalance

import (
	"math"
	"math/rand"
	"testing"

	"sprinklers/internal/bound"
	"sprinklers/internal/traffic"
)

func TestInputProfileExact(t *testing.T) {
	const n = 8
	// One VOQ at rate 4/64 = F size 4 around primary 5 -> interval (4,8],
	// share 1/64 on ports 4..7; one at tiny rate, size 1, port 0.
	rates := []float64{4.0 / 64, 0.5 / 64, 0, 0, 0, 0, 0, 0}
	primary := []int{5, 0, 1, 2, 3, 4, 6, 7}
	p := InputProfile(rates, primary, n)
	loads := p.Loads()
	if math.Abs(loads[4]-1.0/64) > 1e-15 || math.Abs(loads[7]-1.0/64) > 1e-15 {
		t.Fatalf("striped share wrong: %v", loads)
	}
	if math.Abs(loads[0]-0.5/64) > 1e-15 {
		t.Fatalf("size-1 share wrong: %v", loads)
	}
	if loads[1] != 0 {
		t.Fatalf("port 1 should be idle: %v", loads)
	}
	wantMean := (4.0/64 + 0.5/64) / n
	if math.Abs(p.Mean()-wantMean) > 1e-15 {
		t.Fatalf("Mean = %v, want %v", p.Mean(), wantMean)
	}
	if p.Max() != loads[0] && p.Max() != loads[4] {
		t.Fatalf("Max = %v", p.Max())
	}
}

func TestImbalanceEdge(t *testing.T) {
	p := InputProfile(make([]float64, 4), []int{0, 1, 2, 3}, 4)
	if p.Imbalance() != 1 {
		t.Fatal("zero profile imbalance should be 1")
	}
}

// TestUniformTrafficNeverOverloads: under uniform traffic all VOQs have
// equal rates, so every placement balances perfectly (stripes all size
// F(rho/N)) and no queue can be overloaded at admissible load.
func TestUniformTrafficNeverOverloads(t *testing.T) {
	const n = 32
	m := traffic.Uniform(n, 0.95)
	rates := m.Row(0)
	mc := Estimate(rates, n, 200, nil, rand.New(rand.NewSource(1)))
	if mc.Overloads != 0 {
		t.Fatalf("%d overloads under uniform traffic", mc.Overloads)
	}
	if mc.MeanMax >= 1.0/n {
		t.Fatalf("mean max load %v at service rate", mc.MeanMax)
	}
}

// TestBelowThresholdNeverOverloads: Monte Carlo over random placements of
// the adversarial split below the Theorem 1 threshold must find zero
// overloads.
func TestBelowThresholdNeverOverloads(t *testing.T) {
	const n = 32
	split := AdversarialSplit(n, 0.6) // below 2/3
	mc := Estimate(split, n, 2000, nil, rand.New(rand.NewSource(2)))
	if mc.Overloads != 0 {
		t.Fatalf("Theorem 1 violated empirically: %d overloads", mc.Overloads)
	}
}

// TestAdversarialOverloadsAboveThreshold: well above the threshold the
// adversarial split must overload with positive probability, and the
// empirical probability must respect the Theorem 2 Chernoff bound.
func TestAdversarialOverloadsAboveThreshold(t *testing.T) {
	const n = 32
	split := AdversarialSplit(n, 0.97)
	mc := Estimate(split, n, 5000, []float64{0.5, 0.99}, rand.New(rand.NewSource(3)))
	if mc.Overloads == 0 {
		t.Skip("no overloads at this seed; adversarial regime weaker than expected")
	}
	chernoff := bound.QueueOverload(n, 0.97)
	if emp := mc.OverloadProbability(); emp > chernoff {
		t.Fatalf("empirical overload probability %v exceeds Chernoff bound %v", emp, chernoff)
	}
}

func TestAdversarialSplitShape(t *testing.T) {
	const n = 32
	split := AdversarialSplit(n, 0.8)
	var sum float64
	for _, r := range split {
		if r < 0 {
			t.Fatal("negative rate")
		}
		sum += r
	}
	if math.Abs(sum-0.8) > 1e-12 {
		t.Fatalf("total %v, want 0.8", sum)
	}
	// The heavy VOQ dominates.
	if split[n/2] < 0.3 {
		t.Fatalf("heavy VOQ rate %v", split[n/2])
	}
}

func TestQuantilesOrdered(t *testing.T) {
	const n = 16
	m := traffic.Diagonal(n, 0.9)
	mc := Estimate(m.Row(0), n, 500, []float64{0.1, 0.5, 0.9}, rand.New(rand.NewSource(4)))
	if len(mc.MaxQuantile) != 3 {
		t.Fatal("quantile count")
	}
	if !(mc.MaxQuantile[0] <= mc.MaxQuantile[1] && mc.MaxQuantile[1] <= mc.MaxQuantile[2]) {
		t.Fatalf("quantiles not ordered: %v", mc.MaxQuantile)
	}
}
