// Package loadbalance analyzes how well a Sprinklers stripe assignment
// spreads traffic over the intermediate ports — the empirical counterpart
// of the Sec. 4 stability analysis.
//
// For one input port with VOQ rates r_1..r_N and primary-port assignment
// sigma, the arrival rate to the queue of packets bound for intermediate
// port l is
//
//	X_l = sum_j (r_j / F(r_j)) * 1{ l in interval(sigma(j), F(r_j)) },
//
// and the switch is stable when every X_l stays below the 1/N service rate.
// The package computes exact per-port load profiles, estimates the overload
// probability over random placements by Monte Carlo, and provides the
// adversarial rate split from the proof of Theorem 1 so the estimate can be
// compared against the Chernoff bound of Theorem 2 in its worst-case
// regime. By the OLS symmetry argument of Sec. 4, the same distribution
// governs the output-side queues, so one analysis covers both.
package loadbalance

import (
	"math/rand"
	"sort"

	"sprinklers/internal/dyadic"
	"sprinklers/internal/permute"
)

// Profile is the per-intermediate-port arrival-rate profile of one input
// port under a concrete stripe assignment.
type Profile struct {
	n     int
	loads []float64
}

// InputProfile computes the exact load profile: rates[j] is VOQ j's rate
// and primary[j] its assigned primary intermediate port.
func InputProfile(rates []float64, primary []int, n int) Profile {
	loads := make([]float64, n)
	for j, r := range rates {
		if r <= 0 {
			continue
		}
		f := dyadic.StripeSize(r, n)
		share := r / float64(f)
		iv := dyadic.Containing(primary[j], f)
		for l := iv.Start; l < iv.End(); l++ {
			loads[l] += share
		}
	}
	return Profile{n: n, loads: loads}
}

// Loads returns a copy of the per-port loads.
func (p Profile) Loads() []float64 { return append([]float64(nil), p.loads...) }

// Max returns the largest per-port load.
func (p Profile) Max() float64 {
	var mx float64
	for _, l := range p.loads {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// Mean returns the average per-port load (total input load / N).
func (p Profile) Mean() float64 {
	var s float64
	for _, l := range p.loads {
		s += l
	}
	return s / float64(p.n)
}

// Imbalance returns Max/Mean, 1.0 being perfect balance. A zero-load
// profile reports 1.
func (p Profile) Imbalance() float64 {
	m := p.Mean()
	if m == 0 {
		return 1
	}
	return p.Max() / m
}

// Overloaded reports whether any queue's arrival rate reaches the 1/N
// service rate.
func (p Profile) Overloaded() bool { return p.Max() >= 1/float64(p.n) }

// MonteCarlo summarizes the distribution of the maximum per-port load over
// random primary-port placements.
type MonteCarlo struct {
	Trials      int
	Overloads   int     // trials with some X_l >= 1/N
	MeanMax     float64 // mean of max_l X_l
	MaxQuantile []float64
}

// OverloadProbability returns MC.Overloads / MC.Trials.
func (mc MonteCarlo) OverloadProbability() float64 {
	return float64(mc.Overloads) / float64(mc.Trials)
}

// Estimate runs trials random uniform placements of the given rate split
// and summarizes the resulting max-load distribution. quantiles asks for
// order statistics of max_l X_l (e.g. 0.5, 0.99).
func Estimate(rates []float64, n, trials int, quantiles []float64, rng *rand.Rand) MonteCarlo {
	mc := MonteCarlo{Trials: trials}
	maxes := make([]float64, trials)
	var sum float64
	for t := 0; t < trials; t++ {
		primary := permute.Uniform(n, rng)
		p := InputProfile(rates, primary, n)
		m := p.Max()
		maxes[t] = m
		sum += m
		if p.Overloaded() {
			mc.Overloads++
		}
	}
	mc.MeanMax = sum / float64(trials)
	sort.Float64s(maxes)
	for _, q := range quantiles {
		idx := int(q * float64(trials-1))
		mc.MaxQuantile = append(mc.MaxQuantile, maxes[idx])
	}
	return mc
}

// AdversarialSplit returns the worst-case rate split from the proof of
// Theorem 1 (Lemma 1), scaled to the given total load: a geometric ladder
// of VOQ rates 2^ceil(log2 l)/N^2 for l = 1..N/2 plus one heavy VOQ at rate
// 1/2. At total load exactly 2/3 + 1/(3N^2) an aligned placement drives one
// queue to exactly its service rate; under random placement it maximizes
// the overload probability among the splits the proof considers.
func AdversarialSplit(n int, total float64) []float64 {
	base := make([]float64, n)
	var sum float64
	for l := 1; l <= n/2; l++ {
		f := 1
		for f < l {
			f *= 2
		}
		base[l-1] = float64(f) / float64(n*n)
		sum += base[l-1]
	}
	base[n/2] = 0.5
	sum += 0.5
	scale := total / sum
	for j := range base {
		base[j] *= scale
	}
	return base
}
