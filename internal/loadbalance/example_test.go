package loadbalance_test

import (
	"fmt"
	"math/rand"

	"sprinklers/internal/loadbalance"
	"sprinklers/internal/traffic"
)

// ExampleInputProfile computes the exact per-intermediate-port load that
// one input's stripe assignment induces — the quantity X_l the Sec. 4
// analysis bounds.
func ExampleInputProfile() {
	const n = 8
	// One VOQ of rate 4/N^2 (stripe size 4) whose primary port is 5, so
	// its interval is ports 4..7 with load-per-share 1/64 on each.
	rates := make([]float64, n)
	rates[0] = 4.0 / 64
	primary := []int{5, 0, 1, 2, 3, 4, 6, 7}
	p := loadbalance.InputProfile(rates, primary, n)
	fmt.Printf("port 4 load: %.4f of the 1/N=%.4f service rate\n", p.Loads()[4], 1.0/n)
	fmt.Printf("overloaded: %v\n", p.Overloaded())
	// Output:
	// port 4 load: 0.0156 of the 1/N=0.1250 service rate
	// overloaded: false
}

// ExampleEstimate Monte-Carlo samples random stripe placements for a
// uniform workload: with equal VOQ rates every placement balances
// perfectly, so the overload probability is zero.
func ExampleEstimate() {
	const n = 32
	rates := traffic.Uniform(n, 0.95).Row(0)
	mc := loadbalance.Estimate(rates, n, 500, nil, rand.New(rand.NewSource(1)))
	fmt.Printf("overloads: %d of %d placements\n", mc.Overloads, mc.Trials)
	// Output:
	// overloads: 0 of 500 placements
}
