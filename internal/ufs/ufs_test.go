package ufs

import (
	"math/rand"
	"testing"

	"sprinklers/internal/sim"
	"sprinklers/internal/stats"
	"sprinklers/internal/switchtest"
	"sprinklers/internal/traffic"
)

func TestOrderingAcrossLoads(t *testing.T) {
	for _, load := range []float64{0.2, 0.6, 0.9} {
		m := traffic.Uniform(16, load)
		sw := New(16)
		r := switchtest.Run(sw, m, 60000, 17)
		switchtest.CheckConservation(t, sw, r)
		switchtest.CheckOrdered(t, r)
	}
}

func TestOrderingDiagonalAndRandom(t *testing.T) {
	m := traffic.Diagonal(16, 0.85)
	sw := New(16)
	r := switchtest.Run(sw, m, 60000, 18)
	switchtest.CheckOrdered(t, r)

	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 3; trial++ {
		m := switchtest.RandomAdmissible(8, 0.8, rng)
		sw := New(8)
		r := switchtest.Run(sw, m, 40000, rng.Int63())
		switchtest.CheckConservation(t, sw, r)
		switchtest.CheckOrdered(t, r)
	}
}

func TestOrderingUnderBurstyArrivals(t *testing.T) {
	m := traffic.Uniform(8, 0.7)
	sw := New(8)
	src := traffic.NewOnOff(m, 24, rand.New(rand.NewSource(20)))
	delay := &stats.Delay{}
	reorder := stats.NewReorder(8)
	sim.Run(sw, src, stats.Multi{delay, reorder}, sim.WithWarmup(10000), sim.WithSlots(60000))
	if reorder.Reordered() != 0 {
		t.Fatalf("reordered %d packets under bursty arrivals", reorder.Reordered())
	}
	if delay.Count() == 0 {
		t.Fatal("no deliveries")
	}
}

// TestFullFrameOnly: with fewer than N packets in every VOQ, UFS must not
// transmit anything; completing the frame releases all N packets.
func TestFullFrameOnly(t *testing.T) {
	const n = 8
	sw := New(n)
	tr := traffic.NewTrace(n)
	for k := 0; k < n-1; k++ { // one short of a frame
		tr.Add(sim.Slot(k), 0, 3)
	}
	tr.Add(600, 0, 3) // the completing packet, much later
	delivered := 0
	for tt := sim.Slot(0); tt < 599; tt++ {
		tr.Next(tt, sw.Arrive)
		sw.Step(func(sim.Delivery) { delivered++ })
	}
	if delivered != 0 {
		t.Fatalf("UFS delivered %d packets without a full frame", delivered)
	}
	if sw.Backlog() != n-1 {
		t.Fatalf("backlog %d, want %d", sw.Backlog(), n-1)
	}
	for tt := sim.Slot(599); tt < 700; tt++ {
		tr.Next(tt, sw.Arrive)
		sw.Step(func(sim.Delivery) { delivered++ })
	}
	if delivered != n {
		t.Fatalf("delivered %d after completing the frame, want %d", delivered, n)
	}
	if sw.Backlog() != 0 {
		t.Fatalf("backlog %d after drain", sw.Backlog())
	}
}

func TestPendingFrames(t *testing.T) {
	const n = 4
	sw := New(n)
	tr := traffic.NewTrace(n)
	slot := sim.Slot(0)
	for k := 0; k < 3*n; k++ { // three full frames for output 1
		tr.Add(slot, 2, 1)
		slot++
	}
	for tt := sim.Slot(0); tt < slot; tt++ {
		tr.Next(tt, sw.Arrive)
	}
	if got := sw.PendingFrames(2); got != 3 {
		t.Fatalf("PendingFrames = %d, want 3", got)
	}
}

// TestLightLoadDelayIsFrameBound: the defining weakness — at light load the
// mean delay is dominated by frame accumulation, roughly (N-1)/(2r) slots
// for per-VOQ rate r, far above the fabric latency.
func TestLightLoadDelayIsFrameBound(t *testing.T) {
	const n = 16
	m := traffic.Uniform(n, 0.2)
	sw := New(n)
	r := switchtest.Run(sw, m, 200000, 21)
	perVOQ := 0.2 / n
	accumulation := float64(n-1) / 2 / perVOQ
	if r.Delay.Mean() < accumulation/3 {
		t.Fatalf("UFS light-load delay %.0f too small; accumulation alone predicts ~%.0f",
			r.Delay.Mean(), accumulation)
	}
}

// TestFrameBurstAtOutput: every frame must arrive at its output in N
// consecutive slots (the "one burst" property the frame grid enforces).
func TestFrameBurstAtOutput(t *testing.T) {
	const n = 8
	m := traffic.Uniform(n, 0.8)
	sw := New(n)
	src := traffic.NewBernoulli(m, rand.New(rand.NewSource(23)))
	type key struct{ in, out int }
	lastSlot := map[key]sim.Slot{}
	lastSeq := map[key]uint64{}
	var violations int
	obs := sim.ObserverFunc(func(d sim.Delivery) {
		k := key{int(d.Packet.In), int(d.Packet.Out)}
		if s, ok := lastSeq[k]; ok && d.Packet.Seq == s+1 && d.Packet.Seq%uint64(n) != 0 {
			// Same frame as the previous packet: must be the next slot.
			if d.Depart != lastSlot[k]+1 {
				violations++
			}
		}
		lastSeq[k] = d.Packet.Seq
		lastSlot[k] = d.Depart
	})
	sim.Run(sw, src, obs, sim.WithWarmup(5000), sim.WithSlots(50000))
	if violations != 0 {
		t.Fatalf("%d intra-frame delivery gaps; frames not arriving in one burst", violations)
	}
}
