// Package ufs implements Uniform Frame Spreading (Keslassy, Sec. 2.2 of the
// paper): an input may transmit a VOQ's packets only after accumulating a
// full frame of N packets, which it then spreads over the next N slots, one
// packet to each intermediate port. Full frames keep the per-output queue
// lengths identical across all intermediate ports, so every packet to an
// output experiences the same center-stage delay and order is preserved.
//
// UFS achieves 100% throughput for admissible traffic but pays O(N^3)
// worst-case delay, and its delay is dominated by frame accumulation at
// light load — the weakness Figs. 6 and 7 of the paper exhibit and that
// Sprinklers' rate-proportional stripes remove.
package ufs

import (
	"sprinklers/internal/framegrid"
	"sprinklers/internal/queue"
	"sprinklers/internal/sim"
)

// Switch is a Uniform Frame Spreading switch.
type Switch struct {
	n        int
	t        sim.Slot
	voq      [][]queue.FIFO[sim.Packet] // voq[i][j]
	inputs   []inputState
	mid      *framegrid.Stage
	inBuf    int        // real packets at input side
	frameSeq [][]uint64 // per-VOQ frame counter (orders frames of a flow)
	nextID   uint64     // global frame identity
}

type inputState struct {
	frame   []sim.Packet // frame being spread; nil when idle
	pos     int
	frameID uint64
	flowSeq uint64
	rr      int // round-robin pointer over VOQs for frame selection
}

// New builds an n-port UFS switch.
func New(n int) *Switch {
	s := &Switch{
		n:        n,
		voq:      make([][]queue.FIFO[sim.Packet], n),
		inputs:   make([]inputState, n),
		mid:      framegrid.New(n),
		frameSeq: make([][]uint64, n),
	}
	for i := range s.voq {
		s.voq[i] = make([]queue.FIFO[sim.Packet], n)
		s.frameSeq[i] = make([]uint64, n)
	}
	return s
}

// N implements sim.Switch.
func (s *Switch) N() int { return s.n }

// Now implements sim.Switch.
func (s *Switch) Now() sim.Slot { return s.t }

// Backlog implements sim.Switch.
func (s *Switch) Backlog() int { return s.inBuf + s.mid.Backlog() }

// Arrive implements sim.Switch.
func (s *Switch) Arrive(p sim.Packet) {
	s.voq[p.In][p.Out].Push(p)
	s.inBuf++
}

// Step implements sim.Switch.
func (s *Switch) Step(deliver sim.DeliverFunc) {
	t := s.t
	s.mid.Step(t, deliver)
	for i := 0; i < s.n; i++ {
		s.stepInput(i, t)
	}
	s.t++
}

func (s *Switch) stepInput(i int, t sim.Slot) {
	in := &s.inputs[i]
	if in.frame == nil {
		s.selectFrame(i)
	}
	if in.frame == nil {
		return // nothing eligible: UFS idles until a frame fills
	}
	c := framegrid.Cell{
		Pkt:     in.frame[in.pos],
		FrameID: in.frameID,
		FlowSeq: in.flowSeq,
		Index:   in.pos,
		Size:    len(in.frame),
	}
	in.pos++
	if in.pos == len(in.frame) {
		in.frame = nil
	}
	s.inBuf--
	s.mid.Enqueue(sim.FirstStage(i, t, s.n), c)
}

// selectFrame scans the VOQs round-robin for one holding a full frame and,
// if found, extracts the frame for spreading.
func (s *Switch) selectFrame(i int) {
	in := &s.inputs[i]
	for k := 0; k < s.n; k++ {
		j := (in.rr + k) % s.n
		q := &s.voq[i][j]
		if q.Len() < s.n {
			continue
		}
		frame := make([]sim.Packet, s.n)
		for u := range frame {
			frame[u] = q.Pop()
		}
		in.frame = frame
		in.pos = 0
		in.frameID = s.nextID
		s.nextID++
		in.flowSeq = s.frameSeq[i][j]
		s.frameSeq[i][j]++
		in.rr = (j + 1) % s.n
		return
	}
}

// PendingFrames reports, for tests, how many full frames are currently
// waiting at input i.
func (s *Switch) PendingFrames(i int) int {
	c := 0
	for j := 0; j < s.n; j++ {
		c += s.voq[i][j].Len() / s.n
	}
	return c
}
