package ufs

import (
	"sprinklers/internal/registry"
	"sprinklers/internal/sim"
)

func init() {
	registry.RegisterArchitecture(registry.Architecture{
		Name:            "ufs",
		Description:     "Uniform Frame Spreading: full-frame accumulation then one packet per intermediate port",
		OrderPreserving: true,
		Twin:            "markov",
		Rank:            20,
		New: func(cfg registry.ArchConfig) (sim.Switch, error) {
			return New(cfg.N), nil
		},
	})
}
