// Datacenter: a heavy-tailed aggregation workload — the regime the paper's
// introduction motivates. Each input (think ToR uplink) spreads its load
// over the outputs with Zipf popularity, so every input carries a few
// elephant VOQs and many mice. The example shows:
//
//  1. why TCP hashing is unstable here (an elephant VOQ pins its whole rate
//     on one intermediate port, oversubscribing it), and
//  2. how Sprinklers' rate-proportional stripes give elephants wide
//     intervals and mice narrow ones, so mice keep short accumulation
//     delays instead of paying UFS's full-frame price.
package main

import (
	"fmt"
	"math/rand"

	"sprinklers"
	"sprinklers/internal/dyadic"
	"sprinklers/internal/hashing"
	"sprinklers/internal/stats"
	"sprinklers/internal/ufs"
)

func main() {
	const (
		n     = 32
		load  = 0.9
		slots = 400_000
		seed  = 11
	)
	m := sprinklers.Zipf(n, load, 1.2)

	fmt.Printf("Zipf(1.2) aggregation workload, N=%d, load %.2f\n\n", n, load)

	// Stripe sizing: elephants get wide intervals, mice narrow ones.
	fmt.Println("rate-proportional striping at input 0:")
	for _, k := range []int{0, 1, 4, 16} {
		r := m.Rate(0, k)
		fmt.Printf("  VOQ rank %2d: rate %.4f -> stripe size %2d\n", k, r, dyadic.StripeSize(r, n))
	}
	fmt.Println()

	run := func(name string, sw sprinklers.Switch) {
		src := sprinklers.NewBernoulli(m, rand.New(rand.NewSource(seed)))
		delay := &sprinklers.DelayStats{}
		reorder := stats.NewReorder(n)
		offered, delivered := sprinklers.Run(sw, src, stats.Multi{delay, reorder},
			sprinklers.WithWarmup(slots/5), sprinklers.WithSlots(slots))
		fmt.Printf("%-12s mean delay %8.1f  p99 %7d  throughput %.4f  backlog %7d  reordered %d\n",
			name, delay.Mean(), delay.Percentile(99),
			float64(delivered)/float64(offered), sw.Backlog(), reorder.Reordered())
	}

	run("sprinklers", sprinklers.MustNew(sprinklers.ConfigFromMatrix(m, seed)))
	run("ufs", ufs.New(n))
	run("tcp-hashing", hashing.New(n, rand.New(rand.NewSource(seed))))

	fmt.Println(`
TCP hashing's backlog explodes: whichever intermediate port drew the elephant
VOQs is oversubscribed, so its queues grow without bound (Sec. 2.1). UFS is
stable but slow for the mice. Sprinklers keeps both properties: stable,
ordered, and with accumulation delay proportional to each VOQ's own rate.`)
}
