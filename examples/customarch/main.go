// Customarch: extending the harness without touching it. The program
// registers a toy architecture — an idealized output-queued switch with a
// configurable pipeline latency — under the name "toy-oq", then sweeps two
// option variants of it against real Sprinklers with a declarative Spec.
// Everything downstream of the Register call is stock harness code: the
// spec validates the "latency" option against the schema, the runner
// constructs the switch by name, and the renderer keeps the two variants
// distinct through their "as" labels. The same registration would equally
// make "toy-oq" available to cmd/sweep specs, sprinklersim -alg, and the
// conformance suite.
package main

import (
	"context"
	"fmt"
	"os"

	"sprinklers/internal/experiment"
	"sprinklers/internal/registry"
	"sprinklers/internal/sim"
)

// oqSwitch is an idealized output-queued switch: every packet is placed
// directly into a per-output FIFO on arrival and departs, in order, once
// its pipeline latency has elapsed — one packet per output per slot, as the
// second fabric's speed demands. No real two-stage switch can do this (it
// teleports packets past the input stage), which is exactly what makes it
// a useful delay floor to compare real architectures against.
type oqSwitch struct {
	n       int
	t       sim.Slot
	latency sim.Slot
	out     [][]sim.Packet
	backlog int
}

func (s *oqSwitch) N() int        { return s.n }
func (s *oqSwitch) Now() sim.Slot { return s.t }
func (s *oqSwitch) Backlog() int  { return s.backlog }

func (s *oqSwitch) Arrive(p sim.Packet) {
	s.out[p.Out] = append(s.out[p.Out], p)
	s.backlog++
}

func (s *oqSwitch) Step(deliver sim.DeliverFunc) {
	for j := range s.out {
		q := s.out[j]
		if len(q) == 0 || s.t < q[0].Arrival+s.latency {
			continue
		}
		if deliver != nil {
			deliver(sim.Delivery{Packet: q[0], Depart: s.t})
		}
		s.out[j] = q[1:]
		s.backlog--
	}
	s.t++
}

func init() {
	registry.RegisterArchitecture(registry.Architecture{
		Name:            "toy-oq",
		Description:     "idealized output-queued switch with a fixed pipeline latency (delay floor)",
		OrderPreserving: true,
		Rank:            900, // after the built-ins in listings
		Options: registry.Schema{
			registry.Int("latency", 1, "fixed pipeline latency in slots before a packet may depart").AtLeast(1),
		},
		New: func(cfg registry.ArchConfig) (sim.Switch, error) {
			return &oqSwitch{
				n:       cfg.N,
				latency: sim.Slot(cfg.Options.Int("latency")),
				out:     make([][]sim.Packet, cfg.N),
			}, nil
		},
	})
}

func main() {
	spec := experiment.Spec{
		Name: "customarch",
		Algorithms: []experiment.AlgorithmSpec{
			{Name: "toy-oq", As: "oq-1"},
			{Name: "toy-oq", As: "oq-32", Options: registry.Options{"latency": 32}},
			{Name: experiment.Sprinklers},
		},
		Traffic:  experiment.Traffics(experiment.UniformTraffic),
		Loads:    []float64{0.3, 0.6, 0.9},
		Sizes:    []int{16},
		Replicas: 3,
		Slots:    20_000,
		Seed:     1,
	}

	results, err := experiment.RunStudy(context.Background(), spec, experiment.StudyConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Registered toy architecture vs Sprinklers, uniform traffic, N=16")
	fmt.Println()
	experiment.RenderStudyCurves(os.Stdout, results)
	fmt.Println(`
"toy-oq" exists only in this program: one RegisterArchitecture call made it
a first-class citizen of the Spec language, with its "latency" option
validated against the declared schema and the two variants kept apart by
their "as" labels. Registering a real architecture works the same way —
see the "Extending the harness" section of the README.`)
}
