// Study: the declarative experiment engine in one page. A Spec describes a
// whole grid — algorithms x traffic x loads x sizes x burstiness — with
// several independently-seeded replicas per point; RunStudy shards the
// (point, replica) jobs across a worker pool and aggregates each point into
// a mean delay with a 95% confidence interval. Passing a ResultsPath turns
// the run into a resumable checkpointed sweep (kill it, re-run it, and it
// picks up where it stopped — see `go run ./cmd/sweep`).
package main

import (
	"context"
	"fmt"
	"os"

	"sprinklers/internal/experiment"
)

func main() {
	spec := experiment.Spec{
		Name:       "example-study",
		Algorithms: experiment.Algs(experiment.Sprinklers, experiment.FOFF),
		Traffic:    experiment.Traffics(experiment.UniformTraffic),
		Loads:      []float64{0.3, 0.6, 0.9},
		Sizes:      []int{16},
		Replicas:   5, // five seeds per point -> error bars
		Slots:      30_000,
		Seed:       1,
	}

	results, err := experiment.RunStudy(context.Background(), spec, experiment.StudyConfig{
		Progress: func(done, total int, r experiment.PointResult) {
			fmt.Fprintf(os.Stderr, "  %d/%d %s\n", done, total, r.PointKey)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Mean delay (slots) ± 95% CI over 5 replicas, uniform traffic, N=16")
	fmt.Println()
	experiment.RenderStudyCurves(os.Stdout, results)
	fmt.Println(`
Every cell is a batch-means estimate: each replica runs the same point with
an independently derived seed, and the half-width is the Student-t 95%
interval over the replica means. The same Spec serializes to JSON — save it,
version it, and hand it to cmd/sweep with -out to get a checkpointed,
resumable run of the identical study.`)
}
