// Flashcrowd: dynamic scenarios in one page. A Spec may name registered
// scenarios — here a flash crowd that aims 95% of one output's capacity at
// it mid-run — and every grid point then replays the scenario's event
// timeline against the running switch while windowed instruments record the
// per-window trajectory (mean/p99 delay, backlog, throughput, reordering).
// The comparison below is the paper's Sec. 3.5 story: Sprinklers
// provisioned once from pre-crowd rates versus Sprinklers re-measuring VOQ
// rates online and resizing stripes through the clearance protocol.
package main

import (
	"context"
	"fmt"
	"os"

	"sprinklers/internal/experiment"
	"sprinklers/internal/registry"
	"sprinklers/internal/scenario"
)

func main() {
	spec := experiment.Spec{
		Name: "example-flashcrowd",
		Algorithms: []experiment.AlgorithmSpec{
			{Name: experiment.Sprinklers},
			experiment.AdaptiveSprinklers(),
		},
		Traffic: experiment.Traffics(experiment.UniformTraffic),
		Scenarios: []experiment.ScenarioSpec{
			{Name: experiment.FlashCrowd, Options: registry.Options{
				"surge": 0.95, "duration": 0.3,
			}},
		},
		Loads:    []float64{0.8},
		Sizes:    []int{16},
		Replicas: 3,
		Slots:    20_000,
		Windows:  10,
		Seed:     1,
	}

	results, err := experiment.RunStudy(context.Background(), spec, experiment.StudyConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Flash crowd at 25% of the horizon, 30% long: per-window mean delay")
	fmt.Println()
	experiment.RenderTrajectory(os.Stdout, results)

	fmt.Println()
	for _, r := range results {
		rec := scenario.AnalyzeRecovery(r.Windows)
		verdict := "never left its baseline band"
		switch {
		case rec.Disturbed && rec.Recovered:
			verdict = fmt.Sprintf("disturbed, settled by window %d", rec.RecoveredWindow)
		case rec.Disturbed:
			verdict = "disturbed, not settled within the horizon"
		}
		fmt.Printf("%-20s baseline %.1f  peak %.1f  %s\n",
			r.Algorithm, rec.Baseline, rec.Peak, verdict)
	}
}
