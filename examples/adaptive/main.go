// Adaptive: stripe resizing under a traffic shift (Secs. 3.3.2 and 5 of the
// paper). The switch starts with no knowledge of the workload, measures VOQ
// rates online, and resizes stripe intervals — waiting out the clearance
// phase so that stripes of different sizes never coexist in flight and
// packet order is preserved across every resize.
package main

import (
	"fmt"
	"math/rand"

	"sprinklers"
	"sprinklers/internal/stats"
	"sprinklers/internal/traffic"
)

func main() {
	const (
		n    = 16
		seed = 3
	)

	// Phase 1: light uniform traffic. Phase 2: input 0 concentrates on
	// output 5 at a high rate, so VOQ (0,5) should grow its stripe. Then
	// back to phase 1. One phased source keeps per-flow sequence numbers
	// across the shifts so ordering is checked end to end.
	phase1 := sprinklers.Uniform(n, 0.2)
	rates := make([][]float64, n)
	for i := range rates {
		rates[i] = phase1.Row(i)
	}
	rates[0][5] = 0.6 // phase-2 hot VOQ
	phase2 := sprinklers.NewMatrix(rates)

	const phaseSlots = 120_000
	src := traffic.NewPhased(n, rand.New(rand.NewSource(seed))).
		AddPhase(phase1, phaseSlots).
		AddPhase(phase2, phaseSlots).
		AddPhase(phase1, phaseSlots)

	sw := sprinklers.MustNew(sprinklers.Config{
		N:    n,
		Rand: rand.New(rand.NewSource(seed)),
		// No Rates: the switch must discover them.
		Adaptive: &sprinklers.AdaptiveConfig{
			Window:      2048,
			HoldWindows: 2,
		},
	})

	fmt.Printf("adaptive Sprinklers, N=%d, measurement window 2048 slots\n\n", n)
	reorder := stats.NewReorder(n)
	delay := &sprinklers.DelayStats{}
	report := func(name string) {
		fmt.Printf("end of %-8s VOQ(0,5): est. rate %.4f  stripe size %2d   (resizes so far: %d)\n",
			name, sw.EstimatedRate(0, 5), sw.StripeSizeOf(0, 5), sw.Resizes())
	}

	// Step the switch manually so we can snapshot state at each boundary.
	deliver := func(d sprinklers.Delivery) {
		delay.Observe(d)
		reorder.Observe(d)
	}
	for t := sprinklers.Slot(0); t < 3*phaseSlots; t++ {
		src.Next(t, sw.Arrive)
		sw.Step(deliver)
		switch t + 1 {
		case phaseSlots:
			report("phase 1:")
		case 2 * phaseSlots:
			report("phase 2:")
		case 3 * phaseSlots:
			report("phase 3:")
		}
	}

	fmt.Printf("\ndelivered %d packets, mean delay %.1f slots\n", delay.Count(), delay.Mean())
	fmt.Printf("reordered packets across all phases and resizes: %d\n", reorder.Reordered())
	fmt.Println("every resize waited for its clearance phase, so order survived the shifts")
}
