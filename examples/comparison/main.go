// Comparison: a fast version of the paper's Figure 6 — average delay versus
// load for all five switch architectures under uniform traffic at N=32.
// Run `go run ./cmd/delaycurves` for the full-horizon version.
package main

import (
	"fmt"
	"os"

	"sprinklers/internal/experiment"
)

func main() {
	points, err := experiment.Sweep(experiment.Fig6Algorithms, experiment.Config{
		N:       32,
		Traffic: experiment.UniformTraffic,
		Loads:   []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Slots:   150_000,
		Seed:    1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("Figure 6 (reduced horizon): average delay (slots) vs load, uniform traffic, N=32")
	fmt.Println()
	experiment.RenderCurves(os.Stdout, points)
	fmt.Println(`
Reading the table against the paper's Figure 6:
  - the baseline load-balanced switch is the delay lower bound (but reorders);
  - UFS pays full-frame accumulation, worst at light load;
  - FOFF stays near the baseline, paying its resequencing buffer only at high load;
  - PF and Sprinklers hold a flat mid-range delay across all loads;
  - Sprinklers matches PF/FOFF while needing no padding and no resequencer.`)
}
