// Ordering: demonstrate the packet reordering problem that motivates the
// paper. The baseline load-balanced switch spreads consecutive packets of a
// flow across all intermediate ports and delivers badly out of order — the
// behaviour that triggers spurious TCP fast retransmits — while the
// Sprinklers switch, at essentially the same architecture cost, delivers
// every flow perfectly in order.
package main

import (
	"fmt"
	"math/rand"

	"sprinklers"
	"sprinklers/internal/baseline"
	"sprinklers/internal/stats"
)

func main() {
	const (
		n     = 32
		load  = 0.85
		slots = 300_000
		seed  = 7
	)
	m := sprinklers.Diagonal(n, load)

	run := func(name string, sw sprinklers.Switch) {
		src := sprinklers.NewBernoulli(m, rand.New(rand.NewSource(seed)))
		delay := &sprinklers.DelayStats{}
		reorder := stats.NewReorder(n)
		sprinklers.Run(sw, src, stats.Multi{delay, reorder},
			sprinklers.WithWarmup(slots/5), sprinklers.WithSlots(slots))
		fmt.Printf("%-14s mean delay %7.1f   reordered %8d / %8d (%.2f%%)   max seq gap %d\n",
			name, delay.Mean(), reorder.Reordered(), reorder.Total(),
			100*reorder.Fraction(), reorder.MaxGap())
	}

	fmt.Printf("diagonal traffic, N=%d, load %.2f, %d measured slots\n\n", n, load, slots)
	run("load-balanced", baseline.New(n))
	run("sprinklers", sprinklers.MustNew(sprinklers.ConfigFromMatrix(m, seed)))

	fmt.Println("\nThe baseline reorders a large share of every flow; a TCP sender would")
	fmt.Println("misread each sequence gap as loss. Sprinklers pins each VOQ to one dyadic")
	fmt.Println("stripe interval and serves stripes atomically, so gaps never occur.")
}
