// Quickstart: build a Sprinklers switch, push traffic through it, and read
// back delay statistics — the five-minute tour of the public API.
package main

import (
	"fmt"

	"sprinklers"
)

func main() {
	const (
		n    = 32  // ports (must be a power of two)
		load = 0.8 // per-input offered load
		seed = 1
	)

	// The paper's diagonal workload: half of each input's load goes to the
	// matching output, the rest is spread evenly — so each input has one
	// big VOQ and N-1 small ones, and stripe sizes genuinely vary.
	m := sprinklers.Diagonal(n, load)

	// A Sprinklers switch sized for that workload: stripe sizes follow
	// F(r) = min(N, 2^ceil(log2 r N^2)) and placements come from a random
	// Orthogonal Latin Square.
	sw := sprinklers.MustNew(sprinklers.ConfigFromMatrix(m, seed))

	// Every VOQ got a dyadic stripe interval. Look at input 0's first few.
	fmt.Println("stripe intervals at input port 0 (1-based, as in the paper):")
	for j := 0; j < 4; j++ {
		iv := sw.StripeInterval(0, j)
		fmt.Printf("  VOQ ->%2d : primary port %2d, stripe size %2d, interval %v\n",
			j, sw.PrimaryPort(0, j)+1, iv.Size, iv)
	}

	// Run 200k slots of Bernoulli arrivals. RunBernoulli panics if the
	// switch ever reorders a packet, so finishing is itself a property
	// check.
	delay := sprinklers.RunBernoulli(sw, m, 200_000, seed)

	fmt.Printf("\n%d packets delivered, all in order\n", delay.Count())
	fmt.Printf("delay: mean %.1f  p50 %d  p99 %d  max %d slots\n",
		delay.Mean(), delay.Percentile(50), delay.Percentile(99), delay.Max())
}
