package sprinklers

import (
	"sprinklers/internal/bound"
	"sprinklers/internal/markov"
)

// Analytical results of Sec. 4 (Table 1) and Sec. 5 (Figure 5), re-exported
// from the analysis packages.

// OverloadFeasibilityThreshold returns the Theorem 1 constant
// 2/3 + 1/(3N^2): input loads strictly below it cannot overload any queue of
// an N-port Sprinklers switch under any rate split.
var OverloadFeasibilityThreshold = bound.FeasibilityThreshold

// QueueOverloadBound returns the Theorem 2 + Chernoff upper bound on the
// probability that a single (input, intermediate) queue is overloaded when
// the input carries total load rho (a Table 1 entry).
var QueueOverloadBound = bound.QueueOverload

// LogQueueOverloadBound is QueueOverloadBound in the natural-log domain,
// exact even when the probability underflows float64.
var LogQueueOverloadBound = bound.LogQueueOverload

// SwitchOverloadBound returns the union bound over all 2N^2 queues of the
// switch.
var SwitchOverloadBound = bound.SwitchOverload

// ExpectedIntermediateDelay returns the Sec. 5 closed form
// rho (N-1) / (2 (1-rho)) for the expected intermediate-stage queue length
// (equivalently the expected clearance duration, in cycles) under
// worst-burstiness arrivals — one point of Figure 5.
var ExpectedIntermediateDelay = markov.MeanQueueClosedForm
