// Benchmarks that regenerate every table and figure of the paper plus the
// ablation studies listed in DESIGN.md. Each figure benchmark runs the
// corresponding simulation at a fixed horizon and reports the figure's
// y-value (mean packet delay in slots) via ReportMetric, so `go test
// -bench=.` prints the same series the paper plots:
//
//	BenchmarkFig6Uniform/sprinklers/load-0.9    ...  720 delay-slots
//
// The full-horizon, full-grid renderers live in cmd/delaycurves, cmd/table1
// and cmd/fig5; the benchmarks use a reduced horizon so the whole suite
// completes in minutes.
package sprinklers_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"sprinklers/internal/bound"
	"sprinklers/internal/core"
	"sprinklers/internal/dyadic"
	"sprinklers/internal/experiment"
	"sprinklers/internal/markov"
	"sprinklers/internal/pf"
	"sprinklers/internal/queue"
	"sprinklers/internal/sim"
	"sprinklers/internal/stats"
	"sprinklers/internal/traffic"
)

const (
	benchN     = 32
	benchSlots = 60_000
)

// benchPoint runs one simulation point and reports the figure metrics.
func benchPoint(b *testing.B, alg experiment.Algorithm, kind experiment.TrafficKind, load float64) {
	b.Helper()
	var last experiment.Point
	for i := 0; i < b.N; i++ {
		p, err := experiment.RunPoint(alg, experiment.Config{
			N: benchN, Traffic: kind, Slots: benchSlots, Seed: 1,
		}, load)
		if err != nil {
			b.Fatal(err)
		}
		last = p
	}
	b.ReportMetric(last.MeanDelay, "delay-slots")
	b.ReportMetric(last.Throughput, "throughput")
	b.ReportMetric(float64(last.Reordered), "reordered")
}

// BenchmarkFig6Uniform regenerates Figure 6: average delay under uniform
// traffic at N=32 for the five architectures, across the load axis.
func BenchmarkFig6Uniform(b *testing.B) {
	for _, alg := range experiment.Fig6Algorithms {
		for _, load := range []float64{0.1, 0.5, 0.9} {
			b.Run(fmt.Sprintf("%s/load-%.1f", alg, load), func(b *testing.B) {
				benchPoint(b, alg, experiment.UniformTraffic, load)
			})
		}
	}
}

// BenchmarkFig7Diagonal regenerates Figure 7: the same comparison under the
// diagonal traffic pattern.
func BenchmarkFig7Diagonal(b *testing.B) {
	for _, alg := range experiment.Fig6Algorithms {
		for _, load := range []float64{0.1, 0.5, 0.9} {
			b.Run(fmt.Sprintf("%s/load-%.1f", alg, load), func(b *testing.B) {
				benchPoint(b, alg, experiment.DiagonalTraffic, load)
			})
		}
	}
}

// BenchmarkTable1Bound regenerates Table 1 (all 24 entries) per iteration
// and reports the N=2048, rho=0.93 entry's log10 as a spot check.
func BenchmarkTable1Bound(b *testing.B) {
	var rows []bound.Table1Row
	for i := 0; i < b.N; i++ {
		rows = bound.Table1(bound.PaperTable1Rhos, bound.PaperTable1Ns)
	}
	b.ReportMetric(rows[3].LogPs[1]/2.302585, "log10-p(2048@0.93)")
}

// BenchmarkFig5Markov regenerates Figure 5: the expected intermediate-stage
// delay across the switch-size axis, via the exact stationary solve (the
// closed form is free; the solve is the measured work).
func BenchmarkFig5Markov(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for _, n := range []int{64, 256, 1024} {
			last = markov.MeanQueueNumeric(n, 0.9)
		}
	}
	b.ReportMetric(last, "delay-cycles(N=1024)")
}

// BenchmarkAblationScheduler compares the order-preserving gated LSF with
// the literal work-conserving row scan of Sec. 3.4.2 — delay is similar but
// the greedy variant reorders massively, which is why gating matters.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, alg := range []experiment.Algorithm{experiment.Sprinklers, experiment.SprinklersGreedy} {
		b.Run(string(alg), func(b *testing.B) {
			benchPoint(b, alg, experiment.UniformTraffic, 0.9)
		})
	}
}

// BenchmarkAblationPFThreshold sweeps the Padded Frames padding threshold,
// exposing the accumulation-versus-waste tradeoff that motivates the
// adaptive threshold.
func BenchmarkAblationPFThreshold(b *testing.B) {
	run := func(b *testing.B, threshold int, load float64) {
		m := traffic.Uniform(benchN, load)
		var mean float64
		for i := 0; i < b.N; i++ {
			sw := pf.New(benchN, threshold)
			src := traffic.NewBernoulli(m, rand.New(rand.NewSource(1)))
			d := &stats.Delay{}
			sim.Run(sw, src, d, sim.WithWarmup(benchSlots/5), sim.WithSlots(benchSlots))
			mean = d.Mean()
		}
		b.ReportMetric(mean, "delay-slots")
	}
	for _, threshold := range []int{4, 8, 16, 24} {
		for _, load := range []float64{0.3, 0.9} {
			b.Run(fmt.Sprintf("T-%d/load-%.1f", threshold, load), func(b *testing.B) {
				run(b, threshold, load)
			})
		}
	}
	for _, load := range []float64{0.3, 0.9} {
		b.Run(fmt.Sprintf("T-adaptive/load-%.1f", load), func(b *testing.B) {
			run(b, pf.AdaptiveThreshold, load)
		})
	}
}

// BenchmarkAblationStripeSizing compares the paper's rate-proportional
// sizing rule against fixed stripe sizes (size 1 = TCP-hashing-like narrow
// paths; size N = UFS-like full frames) under a heavy-tailed workload where
// the VOQ rates genuinely differ.
func BenchmarkAblationStripeSizing(b *testing.B) {
	m := traffic.Zipf(benchN, 0.9, 1.2)
	rates := m.Rows()
	run := func(b *testing.B, cfg core.Config) {
		var mean, tput float64
		for i := 0; i < b.N; i++ {
			cfg.Rand = rand.New(rand.NewSource(2))
			sw := core.MustNew(cfg)
			src := traffic.NewBernoulli(m, rand.New(rand.NewSource(3)))
			d := &stats.Delay{}
			offered, delivered := sim.Run(sw, src, d,
				sim.WithWarmup(benchSlots/5), sim.WithSlots(benchSlots))
			mean = d.Mean()
			tput = float64(delivered) / float64(offered)
		}
		b.ReportMetric(mean, "delay-slots")
		b.ReportMetric(tput, "throughput")
	}
	b.Run("proportional", func(b *testing.B) {
		run(b, core.Config{N: benchN, Rates: rates})
	})
	b.Run("fixed-1", func(b *testing.B) {
		run(b, core.Config{N: benchN, DefaultStripeSize: 1})
	})
	b.Run("fixed-N", func(b *testing.B) {
		run(b, core.Config{N: benchN, DefaultStripeSize: benchN})
	})
}

// BenchmarkAblationPlacement demonstrates why the Orthogonal Latin Square
// coordination of Sec. 3.3.3 matters: with independent per-input
// permutations, VOQs destined to one output collide on primary ports and
// the output side of the switch loses balance. Under diagonal traffic at
// high load the collision shows up as throughput loss and growing backlog.
func BenchmarkAblationPlacement(b *testing.B) {
	m := traffic.Diagonal(benchN, 0.95)
	rates := m.Rows()
	for _, placement := range []core.Placement{core.PlacementOLS, core.PlacementIndependent} {
		b.Run(placement.String(), func(b *testing.B) {
			var tput, backlog float64
			for i := 0; i < b.N; i++ {
				sw := core.MustNew(core.Config{
					N: benchN, Rates: rates,
					Placement: placement,
					Rand:      rand.New(rand.NewSource(7)),
				})
				src := traffic.NewBernoulli(m, rand.New(rand.NewSource(8)))
				offered, delivered := sim.Run(sw, src, nil,
					sim.WithWarmup(benchSlots/5), sim.WithSlots(benchSlots))
				tput = float64(delivered) / float64(offered)
				backlog = float64(sw.Backlog())
			}
			b.ReportMetric(tput, "throughput")
			b.ReportMetric(backlog, "backlog-pkts")
		})
	}
}

// BenchmarkExtensionSizeSweep measures how Sprinklers' delay scales with
// switch size at fixed load — the extension experiment of DESIGN.md (the
// paper's simulations fix N=32; Sec. 5 predicts O(N) scaling of the
// cycle-bound delay components).
func BenchmarkExtensionSizeSweep(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("N-%d", n), func(b *testing.B) {
			var last experiment.Point
			for i := 0; i < b.N; i++ {
				p, err := experiment.RunPoint(experiment.Sprinklers, experiment.Config{
					N: n, Traffic: experiment.UniformTraffic, Slots: benchSlots, Seed: 1,
				}, 0.9)
				if err != nil {
					b.Fatal(err)
				}
				last = p
			}
			b.ReportMetric(last.MeanDelay, "delay-slots")
			b.ReportMetric(last.MeanDelay/float64(n), "delay-per-N")
		})
	}
}

// BenchmarkExtensionBurstiness measures Sprinklers' delay sensitivity to
// arrival burstiness at fixed load: on/off sources with growing mean burst
// length versus the paper's Bernoulli process (burst 1). Stripe accumulation
// actually benefits from bursts (ready queues fill faster) while queueing
// suffers, so the net effect is an informative extension measurement.
func BenchmarkExtensionBurstiness(b *testing.B) {
	m := traffic.Uniform(benchN, 0.8)
	rates := m.Rows()
	run := func(b *testing.B, burst float64) {
		var mean float64
		var reordered int64
		for i := 0; i < b.N; i++ {
			sw := core.MustNew(core.Config{N: benchN, Rates: rates,
				Rand: rand.New(rand.NewSource(9))})
			var src sim.Source
			if burst <= 1 {
				src = traffic.NewBernoulli(m, rand.New(rand.NewSource(10)))
			} else {
				src = traffic.NewOnOff(m, burst, rand.New(rand.NewSource(10)))
			}
			d := &stats.Delay{}
			r := stats.NewReorder(benchN)
			sim.Run(sw, src, stats.Multi{d, r},
				sim.WithWarmup(benchSlots/5), sim.WithSlots(benchSlots))
			mean = d.Mean()
			reordered = r.Reordered()
		}
		b.ReportMetric(mean, "delay-slots")
		b.ReportMetric(float64(reordered), "reordered")
	}
	for _, burst := range []float64{1, 8, 32} {
		b.Run(fmt.Sprintf("burst-%.0f", burst), func(b *testing.B) { run(b, burst) })
	}
}

// steppedSwitch is a switch/source pair already driven past its warmup
// transient, ready for steady-state step measurement.
type steppedSwitch struct {
	sw  sim.Switch
	src sim.Source
}

// stepBenchCache memoizes warmed-up switches per (algorithm, size) so the
// benchmark framework's iteration-count escalations (which re-invoke the
// benchmark function) do not repeat the warmup; the simulation simply keeps
// advancing from wherever the previous escalation left it, which is exactly
// the steady state being measured.
var stepBenchCache = map[string]steppedSwitch{}

// steadySwitch builds the switch/source pair with build and steps it through
// warmup slots, so ring buffers have grown to their working-set capacities
// and stripe pools are populated before measurement starts.
func steadySwitch(b *testing.B, key string, warmup int, build func() (sim.Switch, sim.Source)) steppedSwitch {
	b.Helper()
	if s, ok := stepBenchCache[key]; ok {
		return s
	}
	sw, src := build()
	arrive := sw.Arrive
	for i := 0; i < warmup; i++ {
		src.Next(sw.Now(), arrive)
		sw.Step(nil)
	}
	s := steppedSwitch{sw: sw, src: src}
	stepBenchCache[key] = s
	return s
}

// largeSprinklers builds an n-port gated Sprinklers switch for the step
// benchmarks: uniform Bernoulli traffic at load 0.9 with explicit size-1
// stripes. Eq. 1 sizing is deliberately NOT used here: at load 0.9 it
// assigns every VOQ a stripe of size N, whose accumulation working set is
// ~0.45*N^2 packets reached only after ~N^2/2 slots — at N=1024 that is
// tens of gigabytes and a million-slot transient, so a benchmark horizon
// only ever measures ready-ring growth, not switching. Size-1 stripes give
// the same per-slot machinery (fabric sweeps, LSF scans, center-stage
// arena, stripe pool) a steady state that is reached within ~10N slots and
// must then be allocation-free. The full Eq. 1 accumulation regime is
// covered by BenchmarkSwitchStep at N=32, where it converges.
func largeSprinklers(n int) (sim.Switch, sim.Source) {
	sw := core.MustNew(core.Config{
		N:                 n,
		DefaultStripeSize: 1,
		Rand:              rand.New(rand.NewSource(1)),
	})
	m := traffic.Uniform(n, 0.9)
	return sw, traffic.NewBernoulli(m, rand.New(rand.NewSource(1)))
}

// stepLoop drives one slot per benchmark iteration. The arrive callback is
// bound once outside the loop — rebinding sw.Arrive per slot would itself
// heap-allocate a method value and mask the switch's own allocation story.
func stepLoop(b *testing.B, s steppedSwitch) {
	b.Helper()
	arrive := s.sw.Arrive
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.src.Next(s.sw.Now(), arrive)
		s.sw.Step(nil)
	}
}

// BenchmarkSwitchStep measures raw simulation speed: slots per second for
// each architecture at N=32, load 0.9 (the cost of one Step includes both
// fabrics and all ports).
func BenchmarkSwitchStep(b *testing.B) {
	for _, alg := range experiment.AllAlgorithms() {
		b.Run(string(alg), func(b *testing.B) {
			s := steadySwitch(b, string(alg), 4096, func() (sim.Switch, sim.Source) {
				m := traffic.Uniform(benchN, 0.9)
				sw, err := experiment.NewSwitch(alg, m, 1)
				if err != nil {
					b.Fatal(err)
				}
				return sw, traffic.NewBernoulli(m, rand.New(rand.NewSource(1)))
			})
			stepLoop(b, s)
		})
	}
}

// BenchmarkLargeSwitchStep checks that a 1024-port Sprinklers switch still
// steps fast (scalability of the constant-time per-port algorithms) and,
// with the pooled/arena-backed hot path, allocation-free in steady state.
func BenchmarkLargeSwitchStep(b *testing.B) {
	const n = 1024
	stepLoop(b, steadySwitch(b, "large-1024", 12*n, func() (sim.Switch, sim.Source) {
		return largeSprinklers(n)
	}))
}

// BenchmarkSizeSweepStep tracks per-slot stepping cost and allocation count
// across switch sizes, so the perf trajectory of the simulator itself (not
// the simulated delay) is visible from one benchtable. Each size warms up
// past its FIFO-growth transient before measurement; in steady state every
// size must report 0 allocs/op. The N=4096 point allocates a multi-gigabyte
// center-stage arena — run it on a machine with memory to spare.
func BenchmarkSizeSweepStep(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("N-%d", n), func(b *testing.B) {
			n := n
			stepLoop(b, steadySwitch(b, fmt.Sprintf("large-%d", n), 12*n, func() (sim.Switch, sim.Source) {
				return largeSprinklers(n)
			}))
		})
	}
}

// BenchmarkParallelStep measures the sharded parallel slot engine: per-slot
// stepping cost at N=4096 under P shard workers versus the sequential path
// (P-1). The trace is identical for every P — see core's parallel engine —
// so any delta is pure execution cost. P must be set before the warmup:
// reshaping the center stage requires an empty switch, so the cache key
// includes P and each parallelism level warms its own switch. On a
// single-CPU machine the parallel points measure coordination overhead
// only; the speedup comparison belongs on a multi-core runner (see the CI
// benchmark job and BENCH_9.json).
func BenchmarkParallelStep(b *testing.B) {
	const n = 4096
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("N-%d/P-%d", n, p), func(b *testing.B) {
			p := p
			stepLoop(b, steadySwitch(b, fmt.Sprintf("par-%d-%d", n, p), 12*n, func() (sim.Switch, sim.Source) {
				sw, src := largeSprinklers(n)
				if p > 1 {
					if err := sw.(sim.Parallelizable).SetParallelism(p); err != nil {
						b.Fatal(err)
					}
				}
				return sw, src
			}))
		})
	}
}

// BenchmarkHugeSwitchStep is the first N=16384 point: the center-stage
// shard banks and occupancy bitmap alone reach tens of gigabytes at this
// size, so the benchmark is opt-in via SPRINKLERS_BENCH_HUGE=1 and skipped
// everywhere else (CI runners and laptops would OOM, not measure).
func BenchmarkHugeSwitchStep(b *testing.B) {
	if os.Getenv("SPRINKLERS_BENCH_HUGE") == "" {
		b.Skip("N=16384 needs ~100 GB of center-stage state; set SPRINKLERS_BENCH_HUGE=1 to run")
	}
	const n = 16384
	for _, p := range []int{1, 8} {
		b.Run(fmt.Sprintf("N-%d/P-%d", n, p), func(b *testing.B) {
			p := p
			stepLoop(b, steadySwitch(b, fmt.Sprintf("huge-%d-%d", n, p), 12*n, func() (sim.Switch, sim.Source) {
				sw, src := largeSprinklers(n)
				if p > 1 {
					if err := sw.(sim.Parallelizable).SetParallelism(p); err != nil {
						b.Fatal(err)
					}
				}
				return sw, src
			}))
		})
	}
}

// BenchmarkStripeSizing measures the sizing rule itself.
func BenchmarkStripeSizing(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	rates := make([]float64, 1024)
	for i := range rates {
		rates[i] = rng.Float64() / 32
	}
	b.ResetTimer()
	var acc int
	for i := 0; i < b.N; i++ {
		acc += dyadic.StripeSize(rates[i%len(rates)], 4096)
	}
	_ = acc
}

// BenchmarkBoundEval measures one Table 1 entry evaluation.
func BenchmarkBoundEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bound.LogQueueOverload(2048, 0.93)
	}
}

// BenchmarkFIFO measures the core queue primitive.
func BenchmarkFIFO(b *testing.B) {
	var q queue.FIFO[sim.Packet]
	for i := 0; i < b.N; i++ {
		q.Push(sim.Packet{ID: uint64(i)})
		if q.Len() > 64 {
			q.Pop()
		}
	}
}

// BenchmarkBernoulliSource measures arrival generation at N=1024.
func BenchmarkBernoulliSource(b *testing.B) {
	m := traffic.Uniform(1024, 0.9)
	src := traffic.NewBernoulli(m, rand.New(rand.NewSource(5)))
	sink := func(sim.Packet) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next(sim.Slot(i), sink)
	}
}
