// Package sprinklers is a faithful, self-contained reproduction of
// "Sprinklers: A Randomized Variable-Size Striping Approach to
// Reordering-Free Load-Balanced Switching" (Ding, Xu, Dai, Song, Lin,
// CoNeXT 2014).
//
// It provides:
//
//   - the Sprinklers switch itself (randomized variable-size dyadic striping
//     with Largest Stripe First scheduling at both stages);
//   - every baseline the paper compares against: the baseline load-balanced
//     switch, Uniform Frame Spreading (UFS), Full Ordered Frames First
//     (FOFF), Padded Frames (PF), and TCP hashing;
//   - the slot-synchronous simulation substrate, workload generators and
//     measurement instruments used to drive them;
//   - the analytical machinery of the paper's evaluation: the Theorem 1/2
//     large-deviation overload bounds (Table 1) and the intermediate-stage
//     Markov delay model (Figure 5).
//
// The package is a facade: it re-exports the stable surface of the internal
// packages so that a downstream user needs a single import. See the
// examples/ directory for runnable programs and cmd/ for the experiment
// binaries that regenerate every table and figure in the paper.
//
// # Quick start
//
//	m := sprinklers.Uniform(32, 0.8) // 32 ports, load 0.8
//	sw, err := sprinklers.New(sprinklers.ConfigFromMatrix(m, 1))
//	if err != nil { ... }
//	delay := sprinklers.RunBernoulli(sw, m, 100_000, 42)
//	fmt.Println("mean delay:", delay.Mean())
package sprinklers

import (
	"math/rand"

	_ "sprinklers/internal/arch" // link every built-in architecture and workload
	"sprinklers/internal/core"
	"sprinklers/internal/registry"
	"sprinklers/internal/sim"
	"sprinklers/internal/stats"
	"sprinklers/internal/traffic"
)

// Core simulation types, re-exported from the engine.
type (
	// Slot is a discrete time-slot index.
	Slot = sim.Slot
	// Packet is the fixed-size cell transiting a switch.
	Packet = sim.Packet
	// Delivery records a packet leaving a switch output.
	Delivery = sim.Delivery
	// Switch is the interface every architecture implements.
	Switch = sim.Switch
	// Source generates packet arrivals.
	Source = sim.Source
	// Observer consumes deliveries during a run.
	Observer = sim.Observer
	// Option configures a Run (see WithWarmup and friends).
	Option = sim.Option

	// RunConfig is the previous generation's run configuration.
	//
	// Deprecated: use Run options (WithWarmup, WithSlots, WithSlotHook,
	// WithContext/WithCancel, WithParallelism); RunConfig cannot express
	// parallel execution. RunWithConfig still accepts it.
	RunConfig = sim.RunConfig
)

// Run options, re-exported from the engine.
var (
	// WithWarmup discards deliveries of packets arriving in the first w slots.
	WithWarmup = sim.WithWarmup
	// WithSlots sets the measured horizon executed after the warmup.
	WithSlots = sim.WithSlots
	// WithSlotHook invokes a callback once per executed slot.
	WithSlotHook = sim.WithSlotHook
	// WithContext stops the run early once the context is done.
	WithContext = sim.WithContext
	// WithCancel is WithContext for raw channels.
	WithCancel = sim.WithCancel
	// WithParallelism shards slot execution across p workers on switches
	// that support it (trace-identical for every p; a no-op elsewhere).
	WithParallelism = sim.WithParallelism
)

// Sprinklers switch configuration, re-exported from the core.
type (
	// Config configures a Sprinklers switch.
	Config = core.Config
	// AdaptiveConfig enables measured-rate stripe resizing.
	AdaptiveConfig = core.AdaptiveConfig
	// Scheduler selects the LSF variant.
	Scheduler = core.Scheduler
	// SprinklersSwitch is the concrete Sprinklers switch type.
	SprinklersSwitch = core.Switch
)

// LSF scheduler variants.
const (
	// GatedLSF is the stripe-atomic, order-preserving scheduler (default).
	GatedLSF = core.GatedLSF
	// GreedyLSF is the work-conserving per-row scan of Sec. 3.4.2.
	GreedyLSF = core.GreedyLSF
)

// Traffic substrate.
type (
	// TrafficMatrix is an N x N VOQ rate matrix.
	TrafficMatrix = traffic.Matrix
	// Bernoulli is the i.i.d. arrival process of the paper's evaluation.
	Bernoulli = traffic.Bernoulli
)

// Workload constructors, re-exported from internal/traffic.
var (
	// Uniform builds the uniform destination pattern of Sec. 6.
	Uniform = traffic.Uniform
	// Diagonal builds the diagonal destination pattern of Sec. 6.
	Diagonal = traffic.Diagonal
	// Hotspot builds a hotspot pattern.
	Hotspot = traffic.Hotspot
	// Zipf builds a heavy-tailed Zipf pattern.
	Zipf = traffic.Zipf
	// NewMatrix builds a rate matrix from explicit entries.
	NewMatrix = traffic.NewMatrix
	// NewBernoulli builds the Bernoulli arrival source for a matrix.
	NewBernoulli = traffic.NewBernoulli
)

// Measurement instruments.
type (
	// DelayStats accumulates packet-delay statistics.
	DelayStats = stats.Delay
	// ReorderStats detects out-of-order deliveries per flow.
	ReorderStats = stats.Reorder
)

// Run drives a switch with a source under functional options; re-exported
// from the engine. RunWithConfig is the deprecated RunConfig-based shim.
var (
	Run           = sim.Run
	RunWithConfig = sim.RunWithConfig
)

// Architectures returns the name of every registered switch architecture
// in canonical (paper legend) order: the seven built-in schemes plus
// anything the program registered itself. Each name is accepted by the
// experiment harness and the cmd tools; run any cmd tool with -list for
// the per-architecture option schemas.
func Architectures() []string { return registry.ArchitectureNames() }

// Workloads returns the name of every registered traffic workload in
// canonical order, as accepted by the experiment harness and cmd tools.
func Workloads() []string { return registry.WorkloadNames() }

// Scenarios returns the name of every registered dynamic scenario in
// canonical order, as accepted by experiment.Spec and cmd/scenario.
func Scenarios() []string { return registry.ScenarioNames() }

// New builds a Sprinklers switch.
func New(cfg Config) (*SprinklersSwitch, error) { return core.New(cfg) }

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *SprinklersSwitch { return core.MustNew(cfg) }

// ConfigFromMatrix builds the standard configuration for a known traffic
// matrix: stripe sizes follow Eq. 1 applied to the matrix rates, placement
// randomness comes from the given seed, and the order-preserving gated LSF
// scheduler is used.
func ConfigFromMatrix(m *TrafficMatrix, seed int64) Config {
	return Config{
		N:     m.N(),
		Rates: m.Rows(), // deep copy: the switch must not alias matrix state
		Rand:  rand.New(rand.NewSource(seed)),
	}
}

// RunBernoulli runs sw under Bernoulli arrivals drawn from m for the given
// number of measured slots (with a warmup of slots/5, overridable via opts)
// and returns the delay statistics. Extra options are appended after the
// defaults, so e.g. WithWarmup or WithParallelism take effect. It panics if
// the switch reorders any packet — callers running the non-order-preserving
// variants should assemble the run themselves.
func RunBernoulli(sw Switch, m *TrafficMatrix, slots Slot, seed int64, opts ...Option) *DelayStats {
	src := traffic.NewBernoulli(m, rand.New(rand.NewSource(seed)))
	delay := &stats.Delay{}
	reorder := stats.NewReorder(m.N())
	runOpts := append([]Option{sim.WithWarmup(slots / 5), sim.WithSlots(slots)}, opts...)
	sim.Run(sw, src, stats.Multi{delay, reorder}, runOpts...)
	if reorder.Reordered() != 0 {
		panic("sprinklers: switch delivered packets out of order")
	}
	return delay
}
